package scheduler

import (
	"fmt"

	"bow/internal/snap"
)

// SaveState serializes the scheduler's decision state: the GTO greedy
// warp and the LRR rotation cursor. The ranking buffer (out/outFor) is
// a pure cache of greedy and is rebuilt on demand after a restore.
func (s *Scheduler) SaveState(enc *snap.Encoder) {
	enc.U8(uint8(s.kind))
	enc.Int(len(s.warps))
	enc.Int(s.greedy)
	enc.Int(s.rrNext)
}

// LoadState restores scheduler state written by SaveState into a
// scheduler built over the same warp partition.
func (s *Scheduler) LoadState(dec *snap.Decoder) {
	kind := Kind(dec.U8())
	warps := dec.Int()
	if dec.Err() != nil {
		return
	}
	if kind != s.kind || warps != len(s.warps) {
		dec.Fail(fmt.Errorf("scheduler: snapshot kind=%d warps=%d, target kind=%d warps=%d",
			kind, warps, s.kind, len(s.warps)))
		return
	}
	s.greedy = dec.Int()
	s.rrNext = dec.Int()
	s.outFor = -1 // invalidate the cached ranking
}
