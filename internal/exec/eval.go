// Package exec provides the functional semantics of the ISA (per-lane
// evaluation of warp instructions) and the functional-unit timing model
// (issue-width-limited pipelines with per-class latencies).
package exec

import (
	"fmt"
	"math"

	"bow/internal/core"
	"bow/internal/isa"
)

// Eval computes the warp-wide result of a non-memory, non-control
// instruction, writing it into *out (whose inactive lanes are left as
// given — callers pass a zeroed destination). srcs holds the resolved
// source operand values in operand order (immediates and specials
// already broadcast/expanded by the caller); predSrc holds the per-lane
// bits of a predicate source operand (OpSel). Only lanes set in active
// are meaningful in the result. Sources and destination are passed by
// pointer: a warp-wide Value is 128 bytes, and this is the hottest
// call in the simulator.
//
// For OpSetp the result is returned as per-lane predicate bits; *out
// is not written.
func Eval(in *isa.Instruction, srcs *[isa.MaxSrcOperands]core.Value, predSrc uint32, active uint32, out *core.Value) (uint32, error) {
	var predOut uint32

	f32 := math.Float32frombits
	b32 := math.Float32bits

	for lane := 0; lane < isa.WarpSize; lane++ {
		if active&(1<<uint(lane)) == 0 {
			continue
		}
		a := srcs[0][lane]
		b := srcs[1][lane]
		c := srcs[2][lane]

		switch in.Op {
		case isa.OpNop:
		case isa.OpMov:
			out[lane] = a
		case isa.OpAdd:
			out[lane] = a + b
		case isa.OpSub:
			out[lane] = a - b
		case isa.OpMul:
			out[lane] = a * b
		case isa.OpMad:
			out[lane] = a*b + c
		case isa.OpShl:
			out[lane] = a << (b & 31)
		case isa.OpShr:
			out[lane] = a >> (b & 31)
		case isa.OpAnd:
			out[lane] = a & b
		case isa.OpOr:
			out[lane] = a | b
		case isa.OpXor:
			out[lane] = a ^ b
		case isa.OpMin:
			if int32(a) < int32(b) {
				out[lane] = a
			} else {
				out[lane] = b
			}
		case isa.OpMax:
			if int32(a) > int32(b) {
				out[lane] = a
			} else {
				out[lane] = b
			}
		case isa.OpAbs:
			if int32(a) < 0 {
				out[lane] = uint32(-int32(a))
			} else {
				out[lane] = a
			}
		case isa.OpFAdd:
			out[lane] = b32(f32(a) + f32(b))
		case isa.OpFSub:
			out[lane] = b32(f32(a) - f32(b))
		case isa.OpFMul:
			out[lane] = b32(f32(a) * f32(b))
		case isa.OpFFma:
			out[lane] = b32(f32(a)*f32(b) + f32(c))
		case isa.OpFMin:
			out[lane] = b32(float32(math.Min(float64(f32(a)), float64(f32(b)))))
		case isa.OpFMax:
			out[lane] = b32(float32(math.Max(float64(f32(a)), float64(f32(b)))))
		case isa.OpI2F:
			out[lane] = b32(float32(int32(a)))
		case isa.OpF2I:
			out[lane] = uint32(int32(f32(a)))
		case isa.OpRcp:
			out[lane] = b32(1 / f32(a))
		case isa.OpSqrt:
			out[lane] = b32(float32(math.Sqrt(float64(f32(a)))))
		case isa.OpEx2:
			out[lane] = b32(float32(math.Exp2(float64(f32(a)))))
		case isa.OpLg2:
			out[lane] = b32(float32(math.Log2(float64(f32(a)))))
		case isa.OpSin:
			out[lane] = b32(float32(math.Sin(float64(f32(a)))))
		case isa.OpCos:
			out[lane] = b32(float32(math.Cos(float64(f32(a)))))
		case isa.OpSetp:
			var t bool
			switch in.Cmp {
			case isa.CmpEQ:
				t = a == b
			case isa.CmpNE:
				t = a != b
			case isa.CmpLT:
				t = int32(a) < int32(b)
			case isa.CmpLE:
				t = int32(a) <= int32(b)
			case isa.CmpGT:
				t = int32(a) > int32(b)
			case isa.CmpGE:
				t = int32(a) >= int32(b)
			}
			if t {
				predOut |= 1 << uint(lane)
			}
		case isa.OpSel:
			if predSrc&(1<<uint(lane)) != 0 {
				out[lane] = a
			} else {
				out[lane] = b
			}
		default:
			return 0, fmt.Errorf("exec: Eval cannot execute %s", in.Op)
		}
	}
	return predOut, nil
}

// Broadcast expands a scalar to a warp-wide value.
func Broadcast(v uint32) core.Value {
	var out core.Value
	for i := range out {
		out[i] = v
	}
	return out
}

// Merge overwrites the lanes of old set in mask with the corresponding
// lanes of new, producing the architecturally merged destination value
// of a predicated or divergent write.
func Merge(old, new core.Value, mask uint32) core.Value {
	out := old
	for lane := 0; lane < isa.WarpSize; lane++ {
		if mask&(1<<uint(lane)) != 0 {
			out[lane] = new[lane]
		}
	}
	return out
}
