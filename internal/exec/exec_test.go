package exec

import (
	"math"
	"testing"
	"testing/quick"

	"bow/internal/core"
	"bow/internal/isa"
)

const allLanes = 0xFFFFFFFF

func evalOne(t *testing.T, op isa.Opcode, a, b, c uint32) uint32 {
	t.Helper()
	in := &isa.Instruction{Op: op, HasDst: true, Dst: 1, PredReg: isa.PredTrue, NSrc: 3}
	srcs := [isa.MaxSrcOperands]core.Value{Broadcast(a), Broadcast(b), Broadcast(c)}
	out, _, err := evalV(in, srcs, 0, allLanes)
	if err != nil {
		t.Fatalf("%v: %v", op, err)
	}
	return out[0]
}

// evalV adapts the in-place Eval to the value-returning shape the
// table-driven tests were written against.
func evalV(in *isa.Instruction, srcs [isa.MaxSrcOperands]core.Value, predSrc, active uint32) (core.Value, uint32, error) {
	var out core.Value
	pred, err := Eval(in, &srcs, predSrc, active, &out)
	return out, pred, err
}

func TestIntegerOps(t *testing.T) {
	cases := []struct {
		op      isa.Opcode
		a, b, c uint32
		want    uint32
	}{
		{isa.OpMov, 7, 0, 0, 7},
		{isa.OpAdd, 3, 4, 0, 7},
		{isa.OpSub, 3, 4, 0, 0xFFFFFFFF},
		{isa.OpMul, 6, 7, 0, 42},
		{isa.OpMad, 2, 3, 4, 10},
		{isa.OpShl, 1, 4, 0, 16},
		{isa.OpShl, 1, 36, 0, 16}, // shift masked to 5 bits
		{isa.OpShr, 0x80000000, 31, 0, 1},
		{isa.OpAnd, 0xF0F0, 0xFF00, 0, 0xF000},
		{isa.OpOr, 0x0F, 0xF0, 0, 0xFF},
		{isa.OpXor, 0xFF, 0x0F, 0, 0xF0},
		{isa.OpMin, 5, ^uint32(2), 0, ^uint32(2)}, // signed: -3 < 5
		{isa.OpMax, 5, ^uint32(2), 0, 5},
		{isa.OpAbs, ^uint32(4), 0, 0, 5}, // |-5| = 5
	}
	for _, cse := range cases {
		if got := evalOne(t, cse.op, cse.a, cse.b, cse.c); got != cse.want {
			t.Errorf("%v(%#x,%#x,%#x) = %#x, want %#x", cse.op, cse.a, cse.b, cse.c, got, cse.want)
		}
	}
}

func TestFloatOps(t *testing.T) {
	f := math.Float32bits
	cases := []struct {
		op      isa.Opcode
		a, b, c uint32
		want    uint32
	}{
		{isa.OpFAdd, f(1.5), f(2.25), 0, f(3.75)},
		{isa.OpFSub, f(1.5), f(2.25), 0, f(-0.75)},
		{isa.OpFMul, f(3), f(0.5), 0, f(1.5)},
		{isa.OpFFma, f(2), f(3), f(1), f(7)},
		{isa.OpFMin, f(2), f(-3), 0, f(-3)},
		{isa.OpFMax, f(2), f(-3), 0, f(2)},
		{isa.OpI2F, ^uint32(0), 0, 0, f(-1)},   // int -1 -> -1.0f
		{isa.OpF2I, f(-2.9), 0, 0, ^uint32(1)}, // trunc toward zero: -2
		{isa.OpRcp, f(4), 0, 0, f(0.25)},
		{isa.OpSqrt, f(9), 0, 0, f(3)},
		{isa.OpEx2, f(3), 0, 0, f(8)},
		{isa.OpLg2, f(8), 0, 0, f(3)},
	}
	for _, cse := range cases {
		if got := evalOne(t, cse.op, cse.a, cse.b, cse.c); got != cse.want {
			t.Errorf("%v = %#x, want %#x", cse.op, got, cse.want)
		}
	}
}

func TestSetpAndSel(t *testing.T) {
	in := &isa.Instruction{Op: isa.OpSetp, Cmp: isa.CmpLT, HasDstPred: true,
		PredReg: isa.PredTrue, NSrc: 2}
	var a, b core.Value
	for l := range a {
		a[l] = uint32(l)
		b[l] = 16
	}
	_, pred, err := evalV(in, [isa.MaxSrcOperands]core.Value{a, b}, 0, allLanes)
	if err != nil {
		t.Fatal(err)
	}
	if pred != 0x0000FFFF {
		t.Errorf("setp.lt lanes = %#x, want 0x0000FFFF", pred)
	}

	sel := &isa.Instruction{Op: isa.OpSel, HasDst: true, Dst: 1, PredReg: isa.PredTrue, NSrc: 3}
	out, _, err := evalV(sel, [isa.MaxSrcOperands]core.Value{Broadcast(10), Broadcast(20)}, pred, allLanes)
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 10 || out[31] != 20 {
		t.Errorf("sel lanes = %d/%d, want 10/20", out[0], out[31])
	}
}

func TestSetpAllComparisons(t *testing.T) {
	mk := func(cmp isa.CmpOp, a, b uint32) bool {
		in := &isa.Instruction{Op: isa.OpSetp, Cmp: cmp, HasDstPred: true,
			PredReg: isa.PredTrue, NSrc: 2}
		_, pred, err := evalV(in, [isa.MaxSrcOperands]core.Value{Broadcast(a), Broadcast(b)}, 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		return pred&1 != 0
	}
	neg2 := ^uint32(1)
	if !mk(isa.CmpEQ, 5, 5) || mk(isa.CmpEQ, 5, 6) {
		t.Error("eq wrong")
	}
	if !mk(isa.CmpNE, 5, 6) || mk(isa.CmpNE, 5, 5) {
		t.Error("ne wrong")
	}
	if !mk(isa.CmpLT, neg2, 3) { // signed -2 < 3
		t.Error("lt must be signed")
	}
	if !mk(isa.CmpLE, 3, 3) || !mk(isa.CmpGE, 3, 3) {
		t.Error("le/ge wrong")
	}
	if !mk(isa.CmpGT, 3, neg2) {
		t.Error("gt must be signed")
	}
}

func TestInactiveLanesUntouched(t *testing.T) {
	in := &isa.Instruction{Op: isa.OpMov, HasDst: true, Dst: 1, PredReg: isa.PredTrue, NSrc: 1}
	out, _, err := evalV(in, [isa.MaxSrcOperands]core.Value{Broadcast(9)}, 0, 0x1)
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 9 || out[1] != 0 {
		t.Errorf("masking wrong: %d/%d", out[0], out[1])
	}
}

func TestEvalRejectsNonALU(t *testing.T) {
	in := &isa.Instruction{Op: isa.OpLd, PredReg: isa.PredTrue}
	if _, _, err := evalV(in, [isa.MaxSrcOperands]core.Value{}, 0, allLanes); err == nil {
		t.Error("memory op accepted by Eval")
	}
}

func TestMerge(t *testing.T) {
	old := Broadcast(1)
	new_ := Broadcast(2)
	m := Merge(old, new_, 0x3)
	if m[0] != 2 || m[1] != 2 || m[2] != 1 {
		t.Errorf("merge lanes wrong: %v", m[:3])
	}
}

// Property: Merge(a, b, full) == b, Merge(a, b, 0) == a, and merging is
// lane-local.
func TestMergeProperty(t *testing.T) {
	f := func(a, b uint32, mask uint32) bool {
		va, vb := Broadcast(a), Broadcast(b)
		m := Merge(va, vb, mask)
		for lane := 0; lane < isa.WarpSize; lane++ {
			want := a
			if mask&(1<<uint(lane)) != 0 {
				want = b
			}
			if m[lane] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: mad == mul+add for all uint32 inputs (wrapping).
func TestMadProperty(t *testing.T) {
	f := func(a, b, c uint32) bool {
		in := &isa.Instruction{Op: isa.OpMad, HasDst: true, Dst: 1, PredReg: isa.PredTrue, NSrc: 3}
		out, _, err := evalV(in, [isa.MaxSrcOperands]core.Value{Broadcast(a), Broadcast(b), Broadcast(c)}, 0, 1)
		return err == nil && out[0] == a*b+c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPipes(t *testing.T) {
	p := NewPipes(PipeConfig{ALULatency: 4, FPULatency: 5, SFULatency: 16,
		NumALU: 2, NumFPU: 1, NumSFU: 1, NumLSU: 1, NumCtrl: 1})
	p.NewCycle(1)
	if !p.TryIssue(isa.FUAlu) || !p.TryIssue(isa.FUAlu) {
		t.Error("two ALU slots should fit")
	}
	if p.TryIssue(isa.FUAlu) {
		t.Error("third ALU slot should fail")
	}
	if !p.TryIssue(isa.FUCtrl) {
		t.Error("ctrl has its own slots")
	}
	if !p.TryIssue(isa.FUMem) || p.TryIssue(isa.FUMem) {
		t.Error("LSU slot accounting wrong")
	}
	p.NewCycle(2)
	if !p.TryIssue(isa.FUAlu) {
		t.Error("slots should reset on new cycle")
	}
	if p.Latency(isa.FUFpu) != 5 || p.Latency(isa.FUSfu) != 16 || p.Latency(isa.FUAlu) != 4 {
		t.Error("latencies wrong")
	}
}
