package exec

import (
	"bow/internal/isa"
)

// PipeConfig sizes the functional-unit pipelines of one SM.
type PipeConfig struct {
	ALULatency int
	FPULatency int
	SFULatency int
	NumALU     int // warp instructions accepted per cycle
	NumFPU     int
	NumSFU     int
	NumLSU     int // memory instructions accepted per cycle
	NumCtrl    int // branch/control unit slots per cycle
}

// DefaultPipeConfig matches the Pascal SM: 4 warp-wide ALU and FPU
// pipes, one SFU quad, one LSU port, and a dedicated branch unit.
func DefaultPipeConfig() PipeConfig {
	return PipeConfig{
		ALULatency: 4, FPULatency: 4, SFULatency: 16,
		NumALU: 4, NumFPU: 4, NumSFU: 1, NumLSU: 1, NumCtrl: 4,
	}
}

// Pipes tracks per-cycle issue slots of the functional units. Latency is
// applied by the SM's event queue; Pipes only answers "can another warp
// instruction of this class start this cycle?".
//
//bow:state
type Pipes struct {
	cfg   PipeConfig //bow:resetskip -- design-point config, fixed at construction; Reset restores slot state only
	cycle int64
	used  [5]int // slots consumed this cycle per class (alu/fpu/sfu/mem/ctrl)
}

// NewPipes creates the issue-slot tracker.
func NewPipes(cfg PipeConfig) *Pipes {
	return &Pipes{cfg: cfg}
}

func classIndex(c isa.FUClass) int {
	switch c {
	case isa.FUAlu:
		return 0
	case isa.FUFpu:
		return 1
	case isa.FUSfu:
		return 2
	case isa.FUMem:
		return 3
	default:
		return 4
	}
}

// Reset restores the tracker to its freshly-constructed state (cycle
// zero, all slots free) for device recycling.
func (p *Pipes) Reset() {
	p.cycle = 0
	p.used = [5]int{}
}

// NewCycle resets the per-cycle slot counters.
func (p *Pipes) NewCycle(cycle int64) {
	p.cycle = cycle
	p.used = [5]int{}
}

// TryIssue consumes an issue slot for the class if one is free this
// cycle.
func (p *Pipes) TryIssue(c isa.FUClass) bool {
	idx := classIndex(c)
	var cap int
	switch idx {
	case 0:
		cap = p.cfg.NumALU
	case 1:
		cap = p.cfg.NumFPU
	case 2:
		cap = p.cfg.NumSFU
	case 3:
		cap = p.cfg.NumLSU
	default:
		cap = p.cfg.NumCtrl
	}
	if p.used[idx] >= cap {
		return false
	}
	p.used[idx]++
	return true
}

// Latency returns the execution latency of the class (memory latency is
// computed by the cache hierarchy instead).
func (p *Pipes) Latency(c isa.FUClass) int {
	switch classIndex(c) {
	case 1:
		return p.cfg.FPULatency
	case 2:
		return p.cfg.SFULatency
	default:
		return p.cfg.ALULatency
	}
}
