package trace

import (
	"testing"

	"bow/internal/asm"
	"bow/internal/isa"
)

func stream(src string) []*isa.Instruction {
	p := asm.MustParse(src)
	out := make([]*isa.Instruction, 0, len(p.Code))
	for i := range p.Code {
		out = append(out, &p.Code[i])
	}
	return out
}

func TestReuseDistancesBasic(t *testing.T) {
	h := ReuseDistances(stream(`
  mov r1, 0x1
  add r2, r1, 0x1
  add r3, r1, 0x2
  exit
`))
	// r1: touched at 0, 1, 2 -> distances 1, 1. r2, r3: first touches.
	if h.Total() != 2 {
		t.Fatalf("reuses = %d, want 2", h.Total())
	}
	if h.Count(1) != 2 {
		t.Errorf("distance-1 count = %d, want 2", h.Count(1))
	}
}

func TestReuseDistancesSameInstruction(t *testing.T) {
	// add r1, r1, r1: reads r1 twice and writes it — one access per
	// instruction per register.
	h := ReuseDistances(stream(`
  mov r1, 0x1
  add r1, r1, r1
  exit
`))
	if h.Total() != 1 || h.Count(1) != 1 {
		t.Errorf("same-instruction dedup broken: total=%d", h.Total())
	}
}

func TestReuseDistanceCapping(t *testing.T) {
	src := "  mov r1, 0x1\n"
	for i := 0; i < MaxTrackedDistance+10; i++ {
		src += "  mov r2, 0x2\n"
	}
	src += "  add r3, r1, 0x1\n  exit\n"
	h := ReuseDistances(stream(src))
	if h.Count(MaxTrackedDistance) == 0 {
		t.Error("far reuse not capped into the last bin")
	}
}

func TestWithinWindow(t *testing.T) {
	h := ReuseDistances(stream(`
  mov r1, 0x1
  add r2, r1, 0x1
  mov r3, 0x0
  mov r4, 0x0
  add r5, r1, 0x2
  exit
`))
	// r1 distances: 1 (pc0->pc1) and 3 (pc1->pc4).
	if got := WithinWindow(h, 2); got != 0.5 {
		t.Errorf("within IW2 = %v, want 0.5", got)
	}
	if got := WithinWindow(h, 4); got != 1.0 {
		t.Errorf("within IW4 = %v, want 1.0", got)
	}
	s := Summarize(h)
	if s.Accesses != 2 || s.Within[4] != 1.0 {
		t.Errorf("summary wrong: %+v", s)
	}
}

func TestEmptyStream(t *testing.T) {
	h := ReuseDistances(nil)
	if h.Total() != 0 || WithinWindow(h, 3) != 0 {
		t.Error("empty stream should produce empty stats")
	}
}
