// Package trace analyzes dynamic per-warp instruction traces: register
// reuse distances (the temporal-locality characterization motivating
// the paper's §III) and window-hit summaries derived from them.
//
// A trace is the issue-ordered instruction stream of one warp, as
// captured by the pipeline (sm.CaptureTrace) or synthesized by tests.
package trace

import (
	"bow/internal/isa"
	"bow/internal/stats"
)

// MaxTrackedDistance caps the reuse-distance histogram; anything
// farther is binned at MaxTrackedDistance (effectively "no temporal
// locality a window could exploit").
const MaxTrackedDistance = 64

// ReuseDistances histograms, over one warp's dynamic stream, the
// distance (in instructions) between consecutive accesses to the same
// register. Both reads and writes count as accesses — exactly the
// notion the bypass window exploits, where any access keeps the value
// resident. First-ever accesses are not counted (there is nothing to
// reuse).
func ReuseDistances(stream []*isa.Instruction) *stats.Histogram {
	h := stats.NewHistogram()
	last := map[uint8]int{}
	for pos, in := range stream {
		var buf [isa.MaxSrcOperands]uint8
		touch := in.SrcRegs(buf[:0])
		if d, ok := in.DstReg(); ok {
			touch = append(touch, d)
		}
		seen := map[uint8]bool{}
		for _, r := range touch {
			if seen[r] {
				continue // one access per instruction per register
			}
			seen[r] = true
			if l, ok := last[r]; ok {
				d := pos - l
				if d > MaxTrackedDistance {
					d = MaxTrackedDistance
				}
				h.Observe(d)
			}
			last[r] = pos
		}
	}
	return h
}

// WithinWindow returns the fraction of reuses whose distance is below
// the window size — reuses a BOW window of that size captures (with
// extension, chained accesses each count individually, so this is the
// exact per-access criterion).
func WithinWindow(h *stats.Histogram, iw int) float64 {
	if h.Total() == 0 {
		return 0
	}
	var n int64
	for _, k := range h.Keys() {
		if k < iw {
			n += h.Count(k)
		}
	}
	return float64(n) / float64(h.Total())
}

// Summary condenses a reuse-distance histogram for reporting.
type Summary struct {
	Accesses int64   // reuses observed
	Mean     float64 // mean distance (capped)
	Within   map[int]float64
}

// Summarize computes the within-window fractions for IW 2..7.
func Summarize(h *stats.Histogram) Summary {
	s := Summary{Accesses: h.Total(), Mean: h.Mean(), Within: map[int]float64{}}
	for iw := 2; iw <= 7; iw++ {
		s.Within[iw] = WithinWindow(h, iw)
	}
	return s
}
