// Cycle-level event tracing. The reuse-distance analyses in this
// package look at instruction streams before timing; the CycleTracer
// here records what the timed pipeline actually did, cycle by cycle —
// warp issues, BOC hits/misses/evictions, write consolidations, bank
// conflicts, timing-wheel pops — so a single run can be replayed as
// per-warp timelines (cmd/bowtrace) instead of end-of-run aggregates.
//
// The tracer is designed around two constraints:
//
//   - Disabled must be free. Every emission site guards on a nil
//     tracer pointer, so the cycle loop pays one predictable branch.
//   - Enabled must not allocate per event. Events land in a
//     preallocated ring; once full, the oldest events are overwritten
//     and counted in Dropped.
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// EventKind types a cycle event.
type EventKind uint8

// Cycle event kinds. The Arg field of an Event is kind-dependent, as
// documented per constant.
const (
	// EvWarpIssue: a warp issued an instruction. Arg = program counter.
	EvWarpIssue EventKind = iota
	// EvBOCHit: a source operand was served by the window (including
	// merges into an in-flight fill). Arg = register number.
	EvBOCHit
	// EvBOCMiss: a source operand needed a register-file bank read.
	// Arg = register number.
	EvBOCMiss
	// EvBOCWrite: a result was buffered in the BOC. Arg = window
	// occupancy (live entries) right after the install — the occupancy
	// samples bowtrace summarizes.
	EvBOCWrite
	// EvBOCEvict: a dirty value left the window for the register file
	// (window slide or capacity pressure). Arg = register number.
	EvBOCEvict
	// EvWriteConsolidate: a buffered write was superseded inside the
	// window and will never reach the register file (the paper's write
	// bypass). Arg = destination register.
	EvWriteConsolidate
	// EvBankConflict: register-file bank conflicts were detected this
	// cycle. Arg = number of conflicts; Warp is -1 (bank arbitration is
	// not warp-scoped).
	EvBankConflict
	// EvWheelPop: the timing wheel delivered a scheduled pipeline event.
	// Arg = the SM-internal event kind.
	EvWheelPop

	numEventKinds
)

var eventKindNames = [numEventKinds]string{
	"warp-issue",
	"boc-hit",
	"boc-miss",
	"boc-write",
	"boc-evict",
	"write-consolidate",
	"bank-conflict",
	"wheel-pop",
}

func (k EventKind) String() string {
	if int(k) < len(eventKindNames) {
		return eventKindNames[k]
	}
	return fmt.Sprintf("EventKind(%d)", uint8(k))
}

// EventKindFromString inverts String (for NDJSON decoding).
func EventKindFromString(s string) (EventKind, bool) {
	for i, n := range eventKindNames {
		if n == s {
			return EventKind(i), true
		}
	}
	return 0, false
}

// Event is one cycle-level record: 16 bytes, no pointers.
type Event struct {
	Cycle int64
	SM    int16
	Warp  int16 // warp slot; -1 when the event is not warp-scoped
	Kind  EventKind
	Arg   int32 // kind-dependent payload (see the kind constants)
}

// DefaultTraceCapacity bounds a tracer ring when the caller passes 0:
// 1<<20 events x 16 bytes = 16 MiB, enough for the full event stream of
// the bundled workloads without drops.
const DefaultTraceCapacity = 1 << 20

// CycleTracer collects cycle events into a bounded ring. It is not
// concurrency-safe: the device's SM loop is sequential, which is also
// what makes the emitted stream deterministic.
type CycleTracer struct {
	buf     []Event
	next    int // overwrite position once the ring is full
	dropped int64
	counts  [numEventKinds]int64
}

// NewCycleTracer creates a tracer holding up to capacity events
// (capacity <= 0 selects DefaultTraceCapacity).
func NewCycleTracer(capacity int) *CycleTracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &CycleTracer{buf: make([]Event, 0, capacity)}
}

// Emit records one event, overwriting the oldest when the ring is full.
//
//bow:hotpath
func (t *CycleTracer) Emit(cycle int64, sm, warp int, kind EventKind, arg int32) {
	t.counts[kind]++
	ev := Event{Cycle: cycle, SM: int16(sm), Warp: int16(warp), Kind: kind, Arg: arg}
	if len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, ev)
		return
	}
	t.buf[t.next] = ev
	t.next++
	if t.next == len(t.buf) {
		t.next = 0
	}
	t.dropped++
}

// Len is the number of events currently held.
func (t *CycleTracer) Len() int { return len(t.buf) }

// Dropped is the number of events overwritten because the ring filled.
func (t *CycleTracer) Dropped() int64 { return t.dropped }

// Count returns how many events of kind were emitted over the whole
// run, including any that were later overwritten.
func (t *CycleTracer) Count(kind EventKind) int64 { return t.counts[kind] }

// Each calls fn for every held event, oldest first.
func (t *CycleTracer) Each(fn func(Event)) {
	for _, ev := range t.buf[t.next:] {
		fn(ev)
	}
	for _, ev := range t.buf[:t.next] {
		fn(ev)
	}
}

// eventJSON is the NDJSON wire form of an Event.
type eventJSON struct {
	Cycle int64  `json:"cycle"`
	SM    int16  `json:"sm"`
	Warp  int16  `json:"warp"`
	Kind  string `json:"kind"`
	Arg   int32  `json:"arg"`
}

// WriteNDJSON streams the held events, oldest first, one JSON object
// per line. The encoding is canonical (fixed field order, no
// timestamps), so two identical runs produce byte-identical output.
func (t *CycleTracer) WriteNDJSON(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	var err error
	t.Each(func(ev Event) {
		if err != nil {
			return
		}
		err = enc.Encode(eventJSON{
			Cycle: ev.Cycle, SM: ev.SM, Warp: ev.Warp,
			Kind: ev.Kind.String(), Arg: ev.Arg,
		})
	})
	if err != nil {
		return err
	}
	return bw.Flush()
}

// ReadNDJSON decodes an event stream written by WriteNDJSON.
func ReadNDJSON(r io.Reader) ([]Event, error) {
	var out []Event
	dec := json.NewDecoder(r)
	for {
		var ej eventJSON
		if err := dec.Decode(&ej); err == io.EOF {
			return out, nil
		} else if err != nil {
			return out, fmt.Errorf("trace: line %d: %w", len(out)+1, err)
		}
		kind, ok := EventKindFromString(ej.Kind)
		if !ok {
			return out, fmt.Errorf("trace: line %d: unknown event kind %q", len(out)+1, ej.Kind)
		}
		out = append(out, Event{
			Cycle: ej.Cycle, SM: ej.SM, Warp: ej.Warp, Kind: kind, Arg: ej.Arg,
		})
	}
}
