package trace

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestCycleTracerRingWrap(t *testing.T) {
	tr := NewCycleTracer(4)
	for i := 0; i < 6; i++ {
		tr.Emit(int64(i), 0, i, EvWarpIssue, int32(i*10))
	}
	if tr.Len() != 4 {
		t.Errorf("Len = %d, want 4", tr.Len())
	}
	if tr.Dropped() != 2 {
		t.Errorf("Dropped = %d, want 2", tr.Dropped())
	}
	if tr.Count(EvWarpIssue) != 6 {
		t.Errorf("Count = %d, want 6 (overwritten events still counted)", tr.Count(EvWarpIssue))
	}
	var cycles []int64
	tr.Each(func(ev Event) { cycles = append(cycles, ev.Cycle) })
	if want := []int64{2, 3, 4, 5}; !reflect.DeepEqual(cycles, want) {
		t.Errorf("Each order = %v, want %v (oldest first)", cycles, want)
	}
}

func TestNDJSONRoundTrip(t *testing.T) {
	tr := NewCycleTracer(16)
	tr.Emit(1, 0, 3, EvWarpIssue, 42)
	tr.Emit(2, 1, -1, EvBankConflict, 7)
	tr.Emit(2, 1, 5, EvBOCEvict, 12)

	var buf bytes.Buffer
	if err := tr.WriteNDJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadNDJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := []Event{
		{Cycle: 1, SM: 0, Warp: 3, Kind: EvWarpIssue, Arg: 42},
		{Cycle: 2, SM: 1, Warp: -1, Kind: EvBankConflict, Arg: 7},
		{Cycle: 2, SM: 1, Warp: 5, Kind: EvBOCEvict, Arg: 12},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("round trip = %+v, want %+v", got, want)
	}
}

func TestEventKindStringRoundTrip(t *testing.T) {
	for k := EventKind(0); k < numEventKinds; k++ {
		got, ok := EventKindFromString(k.String())
		if !ok || got != k {
			t.Errorf("kind %d: round trip via %q gave (%d, %v)", k, k.String(), got, ok)
		}
	}
	if _, ok := EventKindFromString("bogus"); ok {
		t.Error("unknown kind name accepted")
	}
}

func TestSpanLogRecordAndByTrace(t *testing.T) {
	l := NewSpanLog(8)
	// Untraced span: feeds the stage windows but is not held.
	l.Record(Span{Hop: HopWorker, Stage: StageHTTP, DurMicros: 100})
	l.Record(Span{TraceID: "t1", Hop: HopWorker, Stage: StageHTTP, StartMicros: 20, DurMicros: 50})
	l.Record(Span{TraceID: "t2", Hop: HopEngine, Stage: StageEngine, StartMicros: 10, DurMicros: 30})

	if got := l.ByTrace("t1"); len(got) != 1 || got[0].DurMicros != 50 {
		t.Errorf("ByTrace(t1) = %+v", got)
	}
	all := l.ByTrace("")
	if len(all) != 2 {
		t.Fatalf("ByTrace(\"\") held %d spans, want 2 (untraced not stored)", len(all))
	}
	if all[0].TraceID != "t2" || all[1].TraceID != "t1" {
		t.Errorf("spans not sorted by start time: %+v", all)
	}

	st := l.Stages()
	if len(st) != 2 {
		t.Fatalf("Stages = %+v, want 2 entries", st)
	}
	// engine/engine sorts before worker/http; the untraced span still
	// counted toward worker/http.
	if st[0].Hop != HopEngine || st[1].Count != 2 {
		t.Errorf("stage breakdown wrong: %+v", st)
	}

	var buf bytes.Buffer
	l.WritePrometheus(&buf)
	out := buf.String()
	for _, want := range []string{
		`bow_spans_total{hop="worker",stage="http"} 2`,
		`bow_span_latency_microseconds{hop="engine",stage="engine",quantile="0.5"} 30`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestSpanLogRingBound(t *testing.T) {
	l := NewSpanLog(4)
	for i := 0; i < 10; i++ {
		l.Record(Span{TraceID: "t", StartMicros: int64(i), Hop: HopClient, Stage: StageHTTP})
	}
	got := l.ByTrace("t")
	if len(got) != 4 {
		t.Fatalf("ring held %d spans, want 4", len(got))
	}
	if got[0].StartMicros != 6 || got[3].StartMicros != 9 {
		t.Errorf("ring kept wrong spans: %+v", got)
	}
}
