// Distributed spans. A simulation request crosses three processes —
// bowctl/client, the cluster coordinator, and a worker bowd — and
// inside the worker it crosses the HTTP handler, the job queue, and the
// simulation engine. A Span is one timed stage on that path; all spans
// of one request share a trace ID carried in the X-Bow-Trace-Id HTTP
// header (injected by simjob.Client from the request context, extracted
// by both servers), so a slow sweep can be attributed to a hop after
// the fact via GET /spans?trace=ID.
//
// SpanLog stores spans in a bounded ring and, independently of any
// trace ID, folds every recorded duration into per-(hop,stage)
// stats.Window latency breakdowns — those feed the Prometheus /metrics
// exposition even when no request is traced.
package trace

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"io"
	"sort"
	"sync"

	"bow/internal/stats"
)

// HeaderTraceID is the HTTP header that carries a trace ID across the
// bowctl -> coordinator -> worker hops.
const HeaderTraceID = "X-Bow-Trace-Id"

// Hop names: which process recorded a span.
const (
	HopClient      = "client"
	HopCoordinator = "coordinator"
	HopWorker      = "worker"
	HopEngine      = "engine"
)

// Stage names: which part of a hop the span timed.
const (
	StageRoute    = "route"    // coordinator: waiting to acquire a worker slot
	StageDispatch = "dispatch" // coordinator: one RPC attempt against a worker
	StageHedge    = "hedge"    // coordinator: a speculative duplicate dispatch
	StageRetry    = "retry"    // coordinator: backoff + re-dispatch after a failure
	StageMigrate  = "migrate"  // coordinator: checkpoint handed back by a draining worker
	StageHTTP     = "http"     // worker: whole /simulate handler
	StageQueue    = "queue"    // engine: job waiting for a pool worker
	StageEngine   = "engine"   // engine: the simulation itself
	StagePrep     = "prep"     // engine: shared-artifact preparation (kernel + memory image)
	StageCache    = "cache"    // engine/coordinator: result served from cache
	StageReplay   = "replay"   // durable: WAL replay during recovery
	StageRecover  = "recover"  // durable: one interrupted job re-routed/resumed
	StagePeerFill = "peerfill" // engine: result fetched from a peer's cache
)

type traceIDKey struct{}

// ContextWithID returns ctx carrying the trace ID (no-op for "").
func ContextWithID(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, traceIDKey{}, id)
}

// IDFromContext extracts the trace ID, or "" when the request is
// untraced.
func IDFromContext(ctx context.Context) string {
	id, _ := ctx.Value(traceIDKey{}).(string)
	return id
}

// NewID returns a fresh 16-hex-digit random trace ID.
func NewID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is effectively fatal elsewhere; here a
		// constant fallback only degrades trace grouping, not correctness.
		return "trace-rand-unavailable"
	}
	return hex.EncodeToString(b[:])
}

// Span is one timed stage of one hop.
type Span struct {
	TraceID     string `json:"traceId"`
	Hop         string `json:"hop"`
	Stage       string `json:"stage"`
	Job         string `json:"job,omitempty"`    // spec content hash
	Worker      string `json:"worker,omitempty"` // worker address (coordinator hops)
	StartMicros int64  `json:"startMicros"`      // unix microseconds
	DurMicros   int64  `json:"durMicros"`
	Err         string `json:"err,omitempty"`
}

// StageStat is the latency breakdown of one (hop, stage) pair, over all
// recorded spans (traced or not).
type StageStat struct {
	Hop       string `json:"hop"`
	Stage     string `json:"stage"`
	Count     int64  `json:"count"`
	P50Micros int    `json:"p50Micros"`
	P95Micros int    `json:"p95Micros"`
}

// DefaultSpanCapacity bounds a SpanLog ring when the caller passes 0.
const DefaultSpanCapacity = 4096

type stageAgg struct {
	count int64
	win   *stats.Window
}

// SpanLog is a concurrency-safe bounded span store with per-stage
// latency windows.
type SpanLog struct {
	mu     sync.Mutex
	buf    []Span
	next   int
	stages map[[2]string]*stageAgg
}

// NewSpanLog creates a log holding up to capacity spans (<= 0 selects
// DefaultSpanCapacity).
func NewSpanLog(capacity int) *SpanLog {
	if capacity <= 0 {
		capacity = DefaultSpanCapacity
	}
	return &SpanLog{
		buf:    make([]Span, 0, capacity),
		stages: make(map[[2]string]*stageAgg),
	}
}

// Record folds the span's duration into its (hop, stage) latency window
// and, when the span belongs to a trace, stores it in the ring
// (overwriting the oldest). Untraced spans still feed the windows —
// the /metrics breakdowns cover all traffic, not just traced requests.
func (l *SpanLog) Record(s Span) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	key := [2]string{s.Hop, s.Stage}
	agg := l.stages[key]
	if agg == nil {
		agg = &stageAgg{win: stats.NewWindow(0)}
		l.stages[key] = agg
	}
	agg.count++
	agg.win.Observe(int(s.DurMicros))
	if s.TraceID == "" {
		return
	}
	if len(l.buf) < cap(l.buf) {
		l.buf = append(l.buf, s)
		return
	}
	l.buf[l.next] = s
	l.next++
	if l.next == len(l.buf) {
		l.next = 0
	}
}

// ByTrace returns the held spans of one trace ID (all held spans when
// id is ""), sorted by start time with recording order as tie-break.
func (l *SpanLog) ByTrace(id string) []Span {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	out := make([]Span, 0, 16)
	for _, s := range l.buf[l.next:] {
		if id == "" || s.TraceID == id {
			out = append(out, s)
		}
	}
	for _, s := range l.buf[:l.next] {
		if id == "" || s.TraceID == id {
			out = append(out, s)
		}
	}
	l.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool {
		return out[i].StartMicros < out[j].StartMicros
	})
	return out
}

// Stages snapshots the per-(hop, stage) breakdowns, sorted by hop then
// stage.
func (l *SpanLog) Stages() []StageStat {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	out := make([]StageStat, 0, len(l.stages))
	for key, agg := range l.stages {
		out = append(out, StageStat{
			Hop:       key[0],
			Stage:     key[1],
			Count:     agg.count,
			P50Micros: agg.win.Quantile(0.50),
			P95Micros: agg.win.Quantile(0.95),
		})
	}
	l.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Hop != out[j].Hop {
			return out[i].Hop < out[j].Hop
		}
		return out[i].Stage < out[j].Stage
	})
	return out
}

// WritePrometheus renders the per-stage counters and latency quantiles
// in Prometheus text exposition format. Both bowd modes append this to
// their /metrics output.
func (l *SpanLog) WritePrometheus(w io.Writer) {
	if l == nil {
		return
	}
	st := l.Stages()
	if len(st) == 0 {
		return
	}
	fmt.Fprintf(w, "# HELP bow_spans_total Spans recorded per hop and stage.\n")
	fmt.Fprintf(w, "# TYPE bow_spans_total counter\n")
	for _, s := range st {
		fmt.Fprintf(w, "bow_spans_total{hop=%q,stage=%q} %d\n", s.Hop, s.Stage, s.Count)
	}
	fmt.Fprintf(w, "# HELP bow_span_latency_microseconds Recent span latency per hop and stage.\n")
	fmt.Fprintf(w, "# TYPE bow_span_latency_microseconds gauge\n")
	for _, s := range st {
		fmt.Fprintf(w, "bow_span_latency_microseconds{hop=%q,stage=%q,quantile=\"0.5\"} %d\n",
			s.Hop, s.Stage, s.P50Micros)
		fmt.Fprintf(w, "bow_span_latency_microseconds{hop=%q,stage=%q,quantile=\"0.95\"} %d\n",
			s.Hop, s.Stage, s.P95Micros)
	}
}
