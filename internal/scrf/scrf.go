// Package scrf configures the statically-compressed register file
// comparator (Angerd et al., arXiv 2006.05693): the compiler proves
// which architectural registers only ever hold narrow (16-bit) values
// and the register file stores those compressed, halving the bank
// energy of their accesses. The design buffers nothing and changes no
// timing — functionally it is the baseline — so its core.Config is a
// non-bypassing policy whose only effect is the compressed-access
// accounting the energy model consumes.
package scrf

import "bow/internal/core"

// Config returns the core configuration modeling an SCRF.
func Config() core.Config {
	return core.Config{Policy: core.PolicySCRF}
}

// StorageBytes is the added storage of the design: none — compression
// reuses the existing banks (the paper's decompressor area is not
// modeled).
func StorageBytes() int { return 0 }
