// Package ltrf configures the latency-tolerant register file
// comparator (Sadrosadati et al., arXiv 2010.09330): the compiler
// partitions each basic block into prefetch intervals whose
// distinct-register working set fits a small operand buffer, the first
// touch of a register in an interval fetches it from the RF (the
// software-managed prefetch), later touches hit the buffer, and the
// buffer drains dirty values back to the RF at every interval
// boundary. The design tolerates RF access latency rather than port
// serialization, so hits ride BOW's forwarding network (no
// ForwardThroughPort).
package ltrf

import "bow/internal/core"

// DefaultEntriesPerWarp sizes the per-warp operand buffer. Eight
// entries comfortably hold the working set of the compiler's default
// intervals (three-source ISA, a handful of instructions per
// interval).
const DefaultEntriesPerWarp = 8

// noWindow disables the nominal instruction window: the buffer is
// managed by interval boundaries and capacity, never by instruction
// distance.
const noWindow = 1 << 30

// Config returns the core configuration modeling an LTRF with the
// given number of warp-register buffer entries per warp.
func Config(entriesPerWarp int) core.Config {
	if entriesPerWarp <= 0 {
		entriesPerWarp = DefaultEntriesPerWarp
	}
	return core.Config{
		IW:       noWindow,
		Capacity: entriesPerWarp,
		Policy:   core.PolicyLTRF,
	}
}

// StorageBytes is the added storage of the operand buffer across an
// SM's warps: entries × 128 B per warp.
func StorageBytes(entriesPerWarp, warps int) int {
	return entriesPerWarp * 128 * warps
}
