// Package core implements the BOW mechanism itself: the per-warp
// breathing operand window. The Engine tracks the register operands of
// the last IW instructions of one warp, decides which reads can be
// bypassed (served from the Bypassing Operand Collector instead of the
// register-file banks), and which writes can be consolidated (never
// written to the RF because a newer write inside the window supersedes
// them, or because the compiler tagged the value transient).
//
// The engine is purely a bookkeeping/value structure with no notion of
// cycles. The timing pipeline (internal/sm) drives it with three calls
// per dynamic instruction:
//
//	plan := e.Advance(inst)        // at issue: slide window, plan reads
//	e.FillFromRF(reg, val, plan)   // when an RF bank read completes
//	e.Writeback(inst, reg, value)  // when the result is produced
//
// Trace-level analyses (Fig. 3, Table I) use Replay, which performs the
// three steps back-to-back with no timing in between.
package core

import (
	"fmt"

	"bow/internal/isa"
)

// Value is one warp-wide register value (32 lanes × 32 bits).
type Value [isa.WarpSize]uint32

// Policy selects the write-back behaviour of the window (paper §IV).
type Policy uint8

// Policies.
const (
	// PolicyBaseline disables bypassing entirely: every read and write
	// goes to the register file (conventional OCU behaviour).
	PolicyBaseline Policy = iota
	// PolicyWriteThrough is baseline BOW: reads are bypassed, but every
	// result is written to both the BOC and the RF.
	PolicyWriteThrough
	// PolicyWriteBack is BOW-WR without compiler hints: results are
	// written to the BOC only and reach the RF when the value slides out
	// of the window un-superseded.
	PolicyWriteBack
	// PolicyCompilerHints is BOW-WR with the two-bit compiler hints
	// steering each write to the RF, the BOC, or both.
	PolicyCompilerHints
	// PolicyCARFC models the compiler-assisted register file cache of
	// Shoushtary et al. (arXiv 2310.17501): a capacity-managed cache
	// (no nominal window) with ForwardThroughPort timing, plus two
	// compiler assists — allocation hints (an rf-only write never
	// occupies an entry) and last-use deallocation (a read whose
	// register is dead afterwards frees its entry, dropping dead dirty
	// values without an RF write).
	PolicyCARFC
	// PolicyLTRF models the latency-tolerant register file of
	// Sadrosadati et al. (arXiv 2010.09330): the compiler partitions
	// each block into prefetch intervals whose working set fits the
	// buffer; the first touch of a register in an interval fetches it
	// from the RF (the software prefetch), later touches hit the
	// buffer, and the buffer drains back to the RF at every interval
	// boundary.
	PolicyLTRF
	// PolicySCRF models the statically-compressed register file of
	// Angerd et al. (arXiv 2006.05693): functionally and timing-wise
	// identical to the baseline (every access goes to the banks), but
	// accesses to registers the compiler proved narrow are counted
	// separately and charged a reduced per-access energy.
	PolicySCRF
)

func (p Policy) String() string {
	//bow:policyexhaustive
	switch p {
	case PolicyBaseline:
		return "baseline"
	case PolicyWriteThrough:
		return "bow-wt"
	case PolicyWriteBack:
		return "bow-wb"
	case PolicyCompilerHints:
		return "bow-wr"
	case PolicyCARFC:
		return "carfc"
	case PolicyLTRF:
		return "ltrf"
	case PolicySCRF:
		return "scrf"
	}
	return fmt.Sprintf("Policy(%d)", uint8(p))
}

// Bypassing reports whether the policy uses the window at all. SCRF
// compresses the banks themselves — it buffers nothing, so it behaves
// as the baseline everywhere except energy accounting.
func (p Policy) Bypassing() bool { return p != PolicyBaseline && p != PolicySCRF }

// WriteCause distinguishes why a register-file write was generated.
type WriteCause uint8

// Write causes.
const (
	// CauseWriteThrough: the write-through policy copies every result to
	// the RF at writeback time.
	CauseWriteThrough WriteCause = iota
	// CauseWindowEvict: a dirty value slid out of the instruction window
	// without being superseded.
	CauseWindowEvict
	// CauseCapacityEvict: the (down-sized) BOC ran out of entries and a
	// dirty value was forced out early. This fires even for values the
	// compiler tagged boc-only — correctness requires saving them.
	CauseCapacityEvict
	// CauseHintDirect: the compiler tagged the value rf-only, so it goes
	// straight to the RF and never occupies a BOC entry.
	CauseHintDirect
	// CauseIntervalDrain: the ltrf policy reached a prefetch-interval
	// boundary and wrote the buffer's dirty values back to the RF.
	CauseIntervalDrain

	// NumWriteCauses sizes per-cause histograms.
	NumWriteCauses = int(CauseIntervalDrain) + 1
)

func (c WriteCause) String() string {
	switch c {
	case CauseWriteThrough:
		return "write-through"
	case CauseWindowEvict:
		return "window-evict"
	case CauseCapacityEvict:
		return "capacity-evict"
	case CauseHintDirect:
		return "hint-direct"
	case CauseIntervalDrain:
		return "interval-drain"
	}
	return fmt.Sprintf("WriteCause(%d)", uint8(c))
}

// RFWriteSink receives the register-file writes the engine decides to
// perform. The timing pipeline turns these into bank requests; trace
// replays just count them.
type RFWriteSink func(reg uint8, val Value, cause WriteCause)

// Config parametrizes an Engine.
type Config struct {
	// IW is the instruction-window size (paper default 3).
	IW int
	// Capacity is the maximum number of live entries in the BOC
	// (registers buffered). 0 means the conservative worst-case sizing
	// of 4 entries per windowed instruction (4*IW). The down-sized design
	// of §IV-C uses 2*IW.
	Capacity int
	// Policy selects the write-back behaviour.
	Policy Policy
	// ForwardThroughPort models a register-file-cache (RFC) comparator
	// instead of BOW's forwarding network: values found in the buffer
	// still pass through the collector's single port one per cycle, so
	// energy improves but port serialization remains (paper §V-A,
	// "Comparison to Register File Caching"). The timing pipeline reads
	// this flag; the window engine itself is unaffected.
	ForwardThroughPort bool
	// NoExtend disables the paper's "Extended Instruction Window": a
	// read hit no longer refreshes the value's residence, so a value is
	// evicted IW instructions after it entered regardless of reuse.
	// Ablation knob only (the paper's design always extends).
	NoExtend bool
	// BeyondWindow implements the paper's stated future work (§IV-C
	// closing paragraph): bypassing is no longer cut off at the nominal
	// window — values stay in the BOC until capacity evicts them. The
	// nominal IW still bounds what the *compiler* may assume, so this
	// knob is only safe with PolicyWriteThrough or PolicyWriteBack
	// (Normalize rejects it with compiler hints: a boc-only tag derived
	// from a fixed window is unsound when eviction timing changes).
	BeyondWindow bool
}

// Normalize fills defaults and validates.
func (c Config) Normalize() (Config, error) {
	if !c.Policy.Bypassing() {
		// Baseline and scrf buffer nothing: the window knobs are
		// meaningless and the ablations have nothing to ablate.
		if c.BeyondWindow || c.NoExtend {
			return c, fmt.Errorf("core: BeyondWindow/NoExtend need a bypassing policy")
		}
		return c, nil
	}
	if c.Policy == PolicyCARFC || c.Policy == PolicyLTRF {
		// The rival designs have no nominal instruction window, so the
		// window ablations do not apply to them.
		if c.BeyondWindow || c.NoExtend {
			return c, fmt.Errorf("core: BeyondWindow/NoExtend do not apply to %v", c.Policy)
		}
	}
	if c.IW < 2 {
		return c, fmt.Errorf("core: instruction window %d too small (min 2)", c.IW)
	}
	if c.Capacity == 0 {
		c.Capacity = 4 * c.IW
	}
	if c.Capacity < 1 {
		return c, fmt.Errorf("core: capacity %d invalid", c.Capacity)
	}
	if c.BeyondWindow && c.Policy == PolicyCompilerHints {
		return c, fmt.Errorf("core: BeyondWindow is unsound with compiler hints " +
			"(transient tags assume the fixed nominal window)")
	}
	return c, nil
}

// entry is one buffered register value inside the window. Live
// entries are serialized field-by-field inside Engine.SaveState.
//
//bow:state
type entry struct {
	reg        uint8
	val        Value
	lastAccess int64 // sequence number of the most recent access
	dirty      bool  // value newer than the RF copy
	hint       isa.WritebackHint
	cancelWB   bool // a newer write inside the window superseded this value
	// pending marks an entry whose RF fill is still in flight: the slot
	// is reserved and later readers forward from it (request merging),
	// but the value is not yet architecturally valid.
	pending bool
	// next links recycled entries on the engine's free list.
	next *entry //bow:derived -- free-list link; only dead entries are on the list, live ones are serialized
}

// Stats counts the engine's traffic. All counts are in warp-register
// accesses (one access = one 128-byte warp-wide operand).
//
//bow:state
type Stats struct {
	Instructions int64 // dynamic instructions advanced through the window

	RFReads      int64 // reads served by the register file
	BypassedRead int64 // reads served by the BOC (forwarded)

	RFWrites         int64 // writes that reached the register file
	CoalescedWrites  int64 // dirty values superseded inside the window (write bypassed)
	DroppedTransient int64 // dirty dead values discarded (window exit or last-use free)
	FlushDropped     int64 // dirty values discarded when the warp exited
	CapacityEvicts   int64 // early evictions forced by a full BOC

	BOCReads  int64 // reads of BOC entries (forwards)
	BOCWrites int64 // writes into BOC entries (fills + results)

	// LastUseFrees counts carfc cache entries deallocated by a last-use
	// read hint; IntervalDrains counts ltrf prefetch-interval boundary
	// drains (buffer flushes, not per-value writes).
	LastUseFrees   int64
	IntervalDrains int64
	// CompressedReads/CompressedWrites count the scrf RF accesses that
	// hit compiler-proven narrow registers (a subset of RFReads and
	// RFWrites; the energy model charges them a reduced per-access
	// cost).
	CompressedReads  int64
	CompressedWrites int64

	// RFWritesByReg histograms RF writes per architectural register
	// (used by the Table I reproduction).
	RFWritesByReg [256]int64
	// RFWriteCauses histograms writes by cause.
	RFWriteCauses [NumWriteCauses]int64
}

// Merge accumulates o into s (aggregation across warps and SMs).
func (s *Stats) Merge(o *Stats) {
	s.Instructions += o.Instructions
	s.RFReads += o.RFReads
	s.BypassedRead += o.BypassedRead
	s.RFWrites += o.RFWrites
	s.CoalescedWrites += o.CoalescedWrites
	s.DroppedTransient += o.DroppedTransient
	s.FlushDropped += o.FlushDropped
	s.CapacityEvicts += o.CapacityEvicts
	s.BOCReads += o.BOCReads
	s.BOCWrites += o.BOCWrites
	s.LastUseFrees += o.LastUseFrees
	s.IntervalDrains += o.IntervalDrains
	s.CompressedReads += o.CompressedReads
	s.CompressedWrites += o.CompressedWrites
	for i := range s.RFWritesByReg {
		s.RFWritesByReg[i] += o.RFWritesByReg[i]
	}
	for i := range s.RFWriteCauses {
		s.RFWriteCauses[i] += o.RFWriteCauses[i]
	}
}

// TotalReads is all operand reads, bypassed or not.
func (s *Stats) TotalReads() int64 { return s.RFReads + s.BypassedRead }

// TotalWrites is all result writes, whether they reached the RF or not.
func (s *Stats) TotalWrites() int64 {
	return s.RFWrites + s.CoalescedWrites + s.DroppedTransient + s.FlushDropped
}

// ReadBypassFrac is the fraction of reads eliminated from the RF.
func (s *Stats) ReadBypassFrac() float64 {
	if t := s.TotalReads(); t > 0 {
		return float64(s.BypassedRead) / float64(t)
	}
	return 0
}

// WriteBypassFrac is the fraction of writes eliminated from the RF.
func (s *Stats) WriteBypassFrac() float64 {
	if t := s.TotalWrites(); t > 0 {
		return float64(t-s.RFWrites) / float64(t)
	}
	return 0
}

// Plan is the operand-collection plan returned by Advance: which source
// operands were forwarded from the window and which must be fetched from
// the register-file banks.
type Plan struct {
	Seq int64 // sequence number assigned to the instruction

	// Bypassed operands: register number and forwarded value.
	BypassedRegs [isa.MaxSrcOperands]uint8
	Bypassed     [isa.MaxSrcOperands]Value
	NBypassed    int

	// NeedRF operands must be read from the banks.
	NeedRF  [isa.MaxSrcOperands]uint8
	NNeedRF int

	// PendingRegs are operands whose bank read was already issued by an
	// earlier in-flight instruction: no new bank request is needed — the
	// caller wires the arriving fill to this instruction too (request
	// merging in the collector).
	PendingRegs  [isa.MaxSrcOperands]uint8
	NPendingRegs int
}

// Engine is the breathing operand window of a single warp.
//
// Entry storage is a direct-indexed table plus an insertion-ordered
// live list instead of a map: register numbers are 8-bit, the BOC holds
// at most Capacity+1 entries, and the cycle loop calls Advance once per
// dynamic instruction — so lookups must be branch-cheap, the expiry
// scan must iterate in a deterministic order, and the steady state must
// not allocate. Entries are recycled through a free list preallocated
// at construction.
//
//bow:state
type Engine struct {
	cfg   Config      //bow:snapskip -- design-point config, fixed at construction (buildEngines)
	sink  RFWriteSink //bow:snapskip -- RF write wiring, rebound at construction
	seq   int64
	byReg [256]*entry //bow:derived -- index over live, rebuilt by LoadState via attach
	live  []*entry    // live entries in insertion order
	free  *entry      //bow:derived -- recycled-entry pool; dead by definition
	stats Stats

	// interval is the ltrf prefetch interval currently buffered (-1
	// before the first instruction). The buffer drains when an
	// instruction carries a different interval index.
	interval int32
}

// NewEngine creates a window engine. sink must not be nil for bypassing
// policies (baseline tolerates nil).
func NewEngine(cfg Config, sink RFWriteSink) (*Engine, error) {
	cfg, err := cfg.Normalize()
	if err != nil {
		return nil, err
	}
	if cfg.Policy.Bypassing() && sink == nil {
		return nil, fmt.Errorf("core: bypassing policy %v requires a write sink", cfg.Policy)
	}
	e := &Engine{cfg: cfg, sink: sink, interval: -1}
	if cfg.Policy.Bypassing() {
		// Capacity+1 covers the transient overshoot between attach and
		// enforceCapacity; one spare keeps allocEntry off the heap even
		// if that invariant ever slips by one.
		e.live = make([]*entry, 0, cfg.Capacity+1)
		slab := make([]entry, cfg.Capacity+2)
		for i := range slab {
			slab[i].next = e.free
			e.free = &slab[i]
		}
	}
	return e, nil
}

// Config returns the engine's normalized configuration.
func (e *Engine) Config() Config { return e.cfg }

// Stats returns a snapshot of the counters.
func (e *Engine) Stats() Stats { return e.stats }

// Coalesced returns the running count of consolidated writes. It exists
// so the cycle tracer can detect a write bypass around one Advance call
// without copying the full Stats block.
func (e *Engine) Coalesced() int64 { return e.stats.CoalescedWrites }

// Occupancy returns the number of live BOC entries (for Fig. 9).
func (e *Engine) Occupancy() int { return len(e.live) }

// allocEntry pops a recycled entry (or, as a safety net, heap-allocates
// one). The 128-byte value is deliberately left stale: every path that
// publishes an entry either fills val or marks it pending.
//
//bow:hotpath
func (e *Engine) allocEntry() *entry {
	if en := e.free; en != nil {
		e.free = en.next
		en.next = nil
		return en
	}
	//bowvet:ignore hotpathalloc -- free-list miss: amortized across the run, steady state recycles
	return new(entry)
}

// attach publishes a fresh entry for reg at the live-list tail.
//
//bow:hotpath
func (e *Engine) attach(reg uint8, en *entry) {
	en.reg = reg
	e.byReg[reg] = en
	e.live = append(e.live, en)
}

// release resets an entry's bookkeeping and pushes it on the free list.
// The caller must already have unlinked it from byReg/live.
//
//bow:hotpath
func (e *Engine) release(en *entry) {
	en.lastAccess = 0
	en.dirty = false
	en.hint = isa.WBBoth
	en.cancelWB = false
	en.pending = false
	en.next = e.free
	e.free = en
}

// detach unlinks en from the table and the live list (preserving
// insertion order) and recycles it.
//
//bow:hotpath
func (e *Engine) detach(en *entry) {
	e.byReg[en.reg] = nil
	for i, x := range e.live {
		if x == en {
			copy(e.live[i:], e.live[i+1:])
			e.live[len(e.live)-1] = nil
			e.live = e.live[:len(e.live)-1]
			break
		}
	}
	e.release(en)
}

// Lookup returns the buffered value of reg, if present. Used by the
// functional executor to obtain the *effective* architectural value
// (window copy is always newer than the RF copy when dirty). Pending
// entries hold no valid value yet and do not count.
//
//bow:hotpath
func (e *Engine) Lookup(reg uint8) (Value, bool) {
	if en := e.byReg[reg]; en != nil && !en.pending {
		return en.val, true
	}
	return Value{}, false
}

// Advance slides the window over the next dynamic instruction of the
// warp: values that fall out of the window are evicted (writing dirty
// survivors to the RF through the sink), the instruction's source
// operands are looked up for forwarding, and a pending older write to
// the same destination is consolidated.
//
//bow:hotpath
func (e *Engine) Advance(in *isa.Instruction) Plan {
	e.seq++
	e.stats.Instructions++
	p := Plan{Seq: e.seq}

	if !e.cfg.Policy.Bypassing() {
		regs, n := in.UniqueSrcRegs()
		for i := 0; i < n; i++ {
			p.NeedRF[p.NNeedRF] = regs[i]
			p.NNeedRF++
			e.stats.RFReads++
			if e.cfg.Policy == PolicySCRF && in.SrcNarrowOf(regs[i]) {
				e.stats.CompressedReads++
			}
		}
		if e.cfg.Policy == PolicySCRF && in.DstNarrow {
			if _, ok := in.DstReg(); ok {
				// The write-back this instruction will perform hits a
				// narrow register; count it here where the hint is at
				// hand (every advanced instruction with a destination
				// writes back exactly once).
				e.stats.CompressedWrites++
			}
		}
		return p
	}

	// 1. Window slide. BOW policies evict entries whose last access is
	// IW or more instructions behind; ltrf instead drains the whole
	// buffer at prefetch-interval boundaries (carfc's effectively
	// unbounded IW makes expiry a no-op).
	if e.cfg.Policy == PolicyLTRF {
		if in.Interval != e.interval {
			e.drainInterval()
			e.interval = in.Interval
		}
	} else {
		e.evictExpired()
	}

	// 2. Source operand lookup. A hit on a pending entry forwards from
	// the in-flight fill (request merging): no extra bank read, but the
	// value arrives with the fill rather than immediately.
	regs, n := in.UniqueSrcRegs()
	for i := 0; i < n; i++ {
		r := regs[i]
		lastUse := e.cfg.Policy == PolicyCARFC && in.LastUseOf(r)
		if en := e.byReg[r]; en != nil {
			if !e.cfg.NoExtend {
				en.lastAccess = e.seq
			}
			if en.pending {
				p.PendingRegs[p.NPendingRegs] = r
				p.NPendingRegs++
			} else {
				p.BypassedRegs[p.NBypassed] = r
				p.Bypassed[p.NBypassed] = en.val
				p.NBypassed++
			}
			e.stats.BypassedRead++
			e.stats.BOCReads++
			if lastUse {
				// CARFC last-use deallocation: the register is dead after
				// this read, so the entry is freed now — a dead dirty
				// value never costs an RF write. (A pending entry's
				// in-flight fill is dropped harmlessly; the merged readers
				// receive the value through the caller's plumbing.)
				e.deallocLastUse(en)
			}
		} else {
			p.NeedRF[p.NNeedRF] = r
			p.NNeedRF++
			e.stats.RFReads++
			if lastUse {
				// CARFC allocation hint: a value read for the last time
				// has no further reuse, so it never earns a cache entry.
				continue
			}
			// Reserve the slot so later in-flight readers merge into this
			// fill instead of issuing their own bank read.
			en := e.allocEntry()
			en.lastAccess = e.seq
			en.pending = true
			e.attach(r, en)
			e.stats.BOCWrites++
			e.enforceCapacity()
		}
	}

	// 3. Destination consolidation: a pending dirty value of the same
	// register is superseded by this instruction (the paper's write
	// bypass). The entry's value stays valid until the new result
	// arrives, but its RF write-back is cancelled now.
	if d, ok := in.DstReg(); ok {
		if en := e.byReg[d]; en != nil && !en.cancelWB {
			if en.dirty {
				e.stats.CoalescedWrites++
			}
			en.cancelWB = true
		}
	}
	return p
}

// evictExpired removes entries that slid out of the instruction window,
// oldest insertion first (the live list keeps insertion order, so the
// RF write-back order is deterministic — the map this replaced iterated
// randomly). With BeyondWindow, the nominal window never expires values
// — only capacity pressure does (the paper's stated future work).
//
//bow:hotpath
func (e *Engine) evictExpired() {
	if e.cfg.BeyondWindow {
		return
	}
	for i := 0; i < len(e.live); {
		en := e.live[i]
		if e.seq-en.lastAccess >= int64(e.cfg.IW) {
			e.evict(en, false) // removes live[i]; the next entry shifts into i
			continue
		}
		i++
	}
}

// evict removes one entry, writing it back to the RF when required.
// capacity marks a forced early eviction (full BOC).
//
//bow:hotpath
func (e *Engine) evict(en *entry, capacity bool) {
	r := en.reg
	if !en.dirty || en.cancelWB {
		e.detach(en)
		return
	}
	if capacity {
		// Early eviction must preserve the value even if the compiler
		// tagged it boc-only: its remaining reuses haven't happened yet.
		e.emitRF(r, en.val, CauseCapacityEvict)
		e.stats.CapacityEvicts++
		e.detach(en)
		return
	}
	if e.cfg.Policy == PolicyCompilerHints && en.hint == isa.WBCollectorOnly {
		// Transient value: dead beyond the window, never touches the RF.
		e.stats.DroppedTransient++
		e.detach(en)
		return
	}
	e.emitRF(r, en.val, CauseWindowEvict)
	e.detach(en)
}

// deallocLastUse frees a carfc entry whose register just saw its
// compiler-marked final read. A dead dirty value is dropped without an
// RF write (that is the design's write saving); a superseded one was
// already counted as coalesced at consolidation time.
//
//bow:hotpath
func (e *Engine) deallocLastUse(en *entry) {
	if en.dirty && !en.cancelWB {
		e.stats.DroppedTransient++
	}
	e.stats.LastUseFrees++
	e.detach(en)
}

// drainInterval empties the ltrf buffer at a prefetch-interval
// boundary: dirty un-superseded values are written back to the RF in
// insertion order, everything else is simply freed. An empty buffer
// drains for free (and is not counted), which keeps a forked resume —
// restored with an empty buffer and interval -1 — on the cold run's
// exact statistics.
//
//bow:hotpath
func (e *Engine) drainInterval() {
	if len(e.live) == 0 {
		return
	}
	e.stats.IntervalDrains++
	for _, en := range e.live {
		e.byReg[en.reg] = nil
		if en.dirty && !en.cancelWB {
			e.emitRF(en.reg, en.val, CauseIntervalDrain)
		}
		e.release(en)
	}
	e.live = e.live[:0]
}

//bow:hotpath
func (e *Engine) emitRF(r uint8, v Value, cause WriteCause) {
	e.stats.RFWrites++
	e.stats.RFWritesByReg[r]++
	e.stats.RFWriteCauses[cause]++
	if e.sink != nil {
		e.sink(r, v, cause)
	}
}

// FillFromRF records that an RF bank read for the plan's instruction
// delivered reg's value, completing the pending slot Advance reserved.
// If the slot was already evicted (window slide or capacity) the fill
// is dropped — its waiting readers receive the value through the
// caller's own plumbing, and re-inserting here would resurrect a value
// the window semantics already aged out.
//
//bow:hotpath
func (e *Engine) FillFromRF(reg uint8, val Value, seq int64) {
	if !e.cfg.Policy.Bypassing() {
		return
	}
	if en := e.byReg[reg]; en != nil {
		if en.pending {
			en.val = val
			en.pending = false
		}
		if seq > en.lastAccess {
			en.lastAccess = seq
		}
	}
}

// Writeback delivers the result of the instruction issued at seq. The
// caller passes the full warp-wide merged value (predication merges are
// the functional executor's job). Returns true when the value was
// buffered in the BOC.
//
//bow:hotpath
func (e *Engine) Writeback(reg uint8, val Value, hint isa.WritebackHint, seq int64) bool {
	// Every policy must take a write-path stance; policyexhaustive
	// holds this roster closed under policy addition.
	//bow:policyexhaustive
	switch e.cfg.Policy {
	case PolicyBaseline, PolicySCRF:
		e.emitRF(reg, val, CauseWriteThrough)
		return false
	case PolicyWriteThrough:
		e.emitRF(reg, val, CauseWriteThrough)
		e.install(reg, val, false, isa.WBBoth, seq)
		return true
	case PolicyWriteBack, PolicyLTRF:
		e.install(reg, val, true, isa.WBBoth, seq)
		return true
	case PolicyCompilerHints, PolicyCARFC:
		if hint == isa.WBRegfileOnly {
			// Straight to the RF; drop any stale window copy (its pending
			// write was already cancelled by Advance's consolidation).
			if en := e.byReg[reg]; en != nil {
				e.detach(en)
			}
			e.emitRF(reg, val, CauseHintDirect)
			return false
		}
		e.install(reg, val, true, hint, seq)
		return true
	}
	return false
}

// install creates or refreshes the window entry for reg.
//
//bow:hotpath
func (e *Engine) install(reg uint8, val Value, dirty bool, hint isa.WritebackHint, seq int64) {
	if en := e.byReg[reg]; en != nil {
		en.val = val
		en.dirty = dirty
		en.hint = hint
		en.cancelWB = false
		en.pending = false
		if seq > en.lastAccess {
			en.lastAccess = seq
		}
		e.stats.BOCWrites++
		return
	}
	en := e.allocEntry()
	en.val = val
	en.lastAccess = seq
	en.dirty = dirty
	en.hint = hint
	e.attach(reg, en)
	e.stats.BOCWrites++
	e.enforceCapacity()
}

// enforceCapacity evicts oldest-accessed entries until the BOC fits its
// physical entry budget (FIFO on last access, per §IV-C).
//
//bow:hotpath
func (e *Engine) enforceCapacity() {
	for len(e.live) > e.cfg.Capacity {
		victim := e.live[0]
		for _, en := range e.live[1:] {
			if en.lastAccess < victim.lastAccess ||
				(en.lastAccess == victim.lastAccess && en.reg < victim.reg) {
				victim = en
			}
		}
		e.evict(victim, true)
	}
}

// Flush ends the warp: remaining window contents are discarded. The
// register context dies with the kernel, so dirty values need not reach
// the RF; callers needing the final architectural state use Lookup
// before flushing.
func (e *Engine) Flush() {
	for _, en := range e.live {
		if en.dirty && !en.cancelWB {
			e.stats.FlushDropped++
		}
		e.byReg[en.reg] = nil
		e.release(en)
	}
	e.live = e.live[:0]
}

// DrainToRF force-writes every dirty, un-superseded value to the RF and
// empties the window, in insertion order. Used when precise RF state is
// required mid-kernel (not at exit).
func (e *Engine) DrainToRF() {
	for _, en := range e.live {
		e.byReg[en.reg] = nil
		if en.dirty && !en.cancelWB {
			e.emitRF(en.reg, en.val, CauseWindowEvict)
		}
		e.release(en)
	}
	e.live = e.live[:0]
}
