package core

import (
	"testing"

	"bow/internal/asm"
	"bow/internal/compiler"
	"bow/internal/isa"
)

// stream converts a straight-line program into the dynamic instruction
// stream a single warp would execute (no branches taken).
func stream(p *asm.Program) []*isa.Instruction {
	out := make([]*isa.Instruction, 0, len(p.Code))
	for i := range p.Code {
		out = append(out, &p.Code[i])
	}
	return out
}

const tableISource = `
.kernel btree_snippet
  ld.global r3, [r8+0x0]
  mov       r2, 0x0ff4
  mul       r1, r0, r2
  mad       r1, r0, r2, r1
  shl       r1, r1, 0x10
  mad       r0, r0, r2, r1
  add       r0, r10, r0
  add       r0, r9, r0
  add       r1, r0, 0x7f8
  ld.global r2, [r1+0x0]
  shl       r4, r2, 0x100
  add       r4, r2, 0x8f
  setp.ne   p0, r3, r1
  exit
`

// TestTableI reproduces the paper's Table I exactly: the number of RF
// writes for registers r0..r3 of the Fig. 6 BTREE fragment must be
//
//	            r0  r1  r2  r3  total
//	write-thru   3   4   2   1   10
//	write-back   1   2   1   1    5
//	compiler     0   1   0   1    2
//
// with an instruction window of 3.
func TestTableI(t *testing.T) {
	type row struct {
		policy Policy
		want   [4]int64 // r0..r3
		total  int64
	}
	rows := []row{
		{PolicyWriteThrough, [4]int64{3, 4, 2, 1}, 10},
		{PolicyWriteBack, [4]int64{1, 2, 1, 1}, 5},
		{PolicyCompilerHints, [4]int64{0, 1, 0, 1}, 2},
	}
	for _, r := range rows {
		prog, err := asm.Parse(tableISource)
		if err != nil {
			t.Fatalf("parse: %v", err)
		}
		if r.policy == PolicyCompilerHints {
			if _, err := compiler.Annotate(prog, 3); err != nil {
				t.Fatalf("annotate: %v", err)
			}
		}
		st, err := Replay(stream(prog), Config{IW: 3, Policy: r.policy})
		if err != nil {
			t.Fatalf("%v: %v", r.policy, err)
		}
		var total int64
		for reg := 0; reg < 4; reg++ {
			got := st.RFWritesByReg[reg]
			if got != r.want[reg] {
				t.Errorf("%v: r%d RF writes = %d, want %d", r.policy, reg, got, r.want[reg])
			}
			total += got
		}
		if total != r.total {
			t.Errorf("%v: total RF writes over r0..r3 = %d, want %d", r.policy, total, r.total)
		}
	}
}

// TestTableIHints checks the per-instruction hint classes the compiler
// assigns to the Fig. 6 fragment.
func TestTableIHints(t *testing.T) {
	prog, err := asm.Parse(tableISource)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if _, err := compiler.Annotate(prog, 3); err != nil {
		t.Fatalf("annotate: %v", err)
	}
	want := map[int]isa.WritebackHint{
		0:  isa.WBRegfileOnly,   // ld r3: first reuse outside window
		1:  isa.WBCollectorOnly, // mov r2: transient chain r3,r4,r6 then killed
		2:  isa.WBCollectorOnly, // mul r1
		3:  isa.WBCollectorOnly, // mad r1
		4:  isa.WBCollectorOnly, // shl r1
		5:  isa.WBCollectorOnly, // mad r0
		6:  isa.WBCollectorOnly, // add r0
		7:  isa.WBCollectorOnly, // add r0 (last use at line 10, then dead)
		8:  isa.WBBoth,          // add r1: reused at 10 in-window AND at setp out-of-window
		9:  isa.WBCollectorOnly, // ld r2: uses at 11,12 then dead
		10: isa.WBCollectorOnly, // shl r4: dead
		11: isa.WBCollectorOnly, // add r4: dead
	}
	for pc, h := range want {
		if got := prog.Code[pc].WBHint; got != h {
			t.Errorf("pc %d (%s): hint = %v, want %v", pc, prog.Code[pc].String(), got, h)
		}
	}
}

// TestBaselinePolicy: no bypassing at all — every read and write goes to
// the RF.
func TestBaselinePolicy(t *testing.T) {
	prog := asm.MustParse(tableISource)
	st, err := Replay(stream(prog), Config{Policy: PolicyBaseline})
	if err != nil {
		t.Fatal(err)
	}
	if st.BypassedRead != 0 {
		t.Errorf("baseline bypassed %d reads", st.BypassedRead)
	}
	if st.CoalescedWrites != 0 || st.DroppedTransient != 0 {
		t.Errorf("baseline coalesced/dropped writes: %d/%d", st.CoalescedWrites, st.DroppedTransient)
	}
	// 12 destination writes in the fragment.
	if st.RFWrites != 12 {
		t.Errorf("baseline RF writes = %d, want 12", st.RFWrites)
	}
}

// TestWindowSlideEviction: a value written and read once must be evicted
// exactly IW instructions after its last access, generating one RF write
// under write-back.
func TestWindowSlideEviction(t *testing.T) {
	src := `
.kernel t
  mov r1, 0x1
  add r2, r1, 0x1
  mov r3, 0x2
  mov r4, 0x3
  mov r5, 0x4
  add r6, r1, 0x5
  exit
`
	prog := asm.MustParse(src)
	st, err := Replay(stream(prog), Config{IW: 3, Policy: PolicyWriteBack})
	if err != nil {
		t.Fatal(err)
	}
	// r1 written at seq1, read at seq2 (bypassed, extends to seq2), then
	// read again at seq6: distance 4 >= 3 so the entry was evicted at
	// seq5 — that read must hit the RF.
	if st.RFWritesByReg[1] != 1 {
		t.Errorf("r1 RF writes = %d, want 1 (window-evict)", st.RFWritesByReg[1])
	}
	if st.BypassedRead != 1 {
		t.Errorf("bypassed reads = %d, want 1 (r1 at seq2 only)", st.BypassedRead)
	}
	// r1's second read (seq6) is the only RF read: seq2's was bypassed
	// and no other instruction has register sources.
	if st.RFReads != 1 {
		t.Errorf("RF reads = %d, want 1", st.RFReads)
	}
}

// TestExtendedWindow: chained reuse keeps extending the residence
// (paper's "Extended Instruction Window").
func TestExtendedWindow(t *testing.T) {
	src := `
.kernel t
  mov r1, 0x1
  nop
  nop
  add r2, r1, 0x1
  nop
  nop
  add r3, r1, 0x1
  nop
  nop
  nop
  add r4, r1, 0x1
  exit
`
	prog := asm.MustParse(src)
	st, err := Replay(stream(prog), Config{IW: 3, Policy: PolicyWriteBack})
	if err != nil {
		t.Fatal(err)
	}
	// r1 written seq1; read seq4 — distance 3 >= IW so the entry was
	// evicted at seq4's slide: the read misses. With IW=4 it would hit.
	if st.BypassedRead != 0 {
		t.Errorf("IW3: bypassed reads = %d, want 0", st.BypassedRead)
	}

	prog2 := asm.MustParse(src)
	st2, err := Replay(stream(prog2), Config{IW: 4, Policy: PolicyWriteBack})
	if err != nil {
		t.Fatal(err)
	}
	// IW=4: read at seq4 hits (gap 3 < 4) extending residence to seq4;
	// read at seq7 hits (gap 3) extending to seq7; read at seq11 misses
	// (gap 4).
	if st2.BypassedRead != 2 {
		t.Errorf("IW4: bypassed reads = %d, want 2 (extension)", st2.BypassedRead)
	}
}

// TestCapacityEviction: a boc-only tagged value forced out by a full
// buffer must still be written to the RF (correctness path, §IV-C).
func TestCapacityEviction(t *testing.T) {
	// r1 is transient per the compiler (used at distance 1, then dead),
	// but a capacity-2 BOC overflows before the reuse happens.
	src := `
.kernel t
  mov r1, 0x7
  add r5, r2, r3
  add r6, r1, r4
  exit
`
	prog := asm.MustParse(src)
	if _, err := compiler.Annotate(prog, 3); err != nil {
		t.Fatal(err)
	}
	if prog.Code[0].WBHint != isa.WBCollectorOnly {
		t.Fatalf("mov r1 hint = %v, want boc-only", prog.Code[0].WBHint)
	}
	st, err := Replay(stream(prog), Config{IW: 3, Capacity: 2, Policy: PolicyCompilerHints})
	if err != nil {
		t.Fatal(err)
	}
	if st.CapacityEvicts == 0 {
		t.Fatalf("expected capacity evictions with a 2-entry BOC")
	}
	// Despite the boc-only tag, r1 must have reached the RF when evicted
	// early... unless it survived. Either way the value is never lost:
	// if r1 was evicted before its read, the read fell back to the RF.
	if st.RFWritesByReg[1] == 0 && st.BypassedRead == 0 {
		t.Errorf("r1 neither written back nor forwarded — value lost")
	}
}

// TestWriteThroughKeepsRFHot: write-through must write the RF for every
// destination and still forward reads.
func TestWriteThroughKeepsRFHot(t *testing.T) {
	src := `
.kernel t
  mov r1, 0x1
  add r2, r1, r1
  add r3, r2, r1
  exit
`
	prog := asm.MustParse(src)
	st, err := Replay(stream(prog), Config{IW: 3, Policy: PolicyWriteThrough})
	if err != nil {
		t.Fatal(err)
	}
	if st.RFWrites != 3 {
		t.Errorf("RF writes = %d, want 3", st.RFWrites)
	}
	// seq2 reads r1 (unique) -> bypass. seq3 reads r2, r1 -> both bypass.
	if st.BypassedRead != 3 {
		t.Errorf("bypassed reads = %d, want 3", st.BypassedRead)
	}
	if st.RFReads != 0 {
		t.Errorf("RF reads = %d, want 0", st.RFReads)
	}
}

// TestConfigNormalize validates defaulting and error paths.
func TestConfigNormalize(t *testing.T) {
	c, err := Config{IW: 3, Policy: PolicyWriteBack}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if c.Capacity != 12 {
		t.Errorf("default capacity = %d, want 12 (4*IW)", c.Capacity)
	}
	if _, err := (Config{IW: 1, Policy: PolicyWriteBack}).Normalize(); err == nil {
		t.Error("IW=1 should be rejected")
	}
	if _, err := NewEngine(Config{IW: 3, Policy: PolicyWriteBack}, nil); err == nil {
		t.Error("nil sink with bypassing policy should be rejected")
	}
	if _, err := NewEngine(Config{Policy: PolicyBaseline}, nil); err != nil {
		t.Errorf("baseline with nil sink should be fine: %v", err)
	}
}

// TestLookupEffectiveValue: the window copy is the architecturally
// current value while dirty.
func TestLookupEffectiveValue(t *testing.T) {
	eng, err := NewEngine(Config{IW: 3, Policy: PolicyWriteBack}, func(uint8, Value, WriteCause) {})
	if err != nil {
		t.Fatal(err)
	}
	in := &isa.Instruction{Op: isa.OpMov, HasDst: true, Dst: 5, PredReg: isa.PredTrue,
		Srcs: [3]isa.Operand{isa.Imm(9)}, NSrc: 1}
	plan := eng.Advance(in)
	var v Value
	for i := range v {
		v[i] = 42
	}
	eng.Writeback(5, v, isa.WBBoth, plan.Seq)
	got, ok := eng.Lookup(5)
	if !ok || got[0] != 42 {
		t.Fatalf("Lookup(5) = %v, %v; want 42s", got[0], ok)
	}
	if _, ok := eng.Lookup(6); ok {
		t.Error("Lookup(6) should miss")
	}
}

// TestDrainToRF writes every dirty value back.
func TestDrainToRF(t *testing.T) {
	writes := 0
	eng, err := NewEngine(Config{IW: 3, Policy: PolicyWriteBack},
		func(uint8, Value, WriteCause) { writes++ })
	if err != nil {
		t.Fatal(err)
	}
	in := &isa.Instruction{Op: isa.OpMov, HasDst: true, Dst: 5, PredReg: isa.PredTrue, NSrc: 0}
	plan := eng.Advance(in)
	eng.Writeback(5, Value{}, isa.WBBoth, plan.Seq)
	eng.DrainToRF()
	if writes != 1 {
		t.Errorf("drain writes = %d, want 1", writes)
	}
	if eng.Occupancy() != 0 {
		t.Errorf("occupancy after drain = %d, want 0", eng.Occupancy())
	}
}
