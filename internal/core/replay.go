package core

import "bow/internal/isa"

// Replay drives an Engine over a dynamic instruction stream with no
// timing model in between: every RF read completes immediately and every
// result writes back immediately. It is the measurement harness behind
// the paper's trace-level characterizations (Fig. 3 bypass opportunity
// curves, Table I write counts).
//
// The stream is the warp's dynamic instruction sequence (loops already
// unrolled by execution or by the caller). Values are irrelevant for
// counting, so zeroes flow through.
func Replay(stream []*isa.Instruction, cfg Config) (Stats, error) {
	eng, err := NewEngine(cfg, func(uint8, Value, WriteCause) {})
	if err != nil {
		return Stats{}, err
	}
	for _, in := range stream {
		plan := eng.Advance(in)
		for i := 0; i < plan.NNeedRF; i++ {
			eng.FillFromRF(plan.NeedRF[i], Value{}, plan.Seq)
		}
		if d, ok := in.DstReg(); ok {
			eng.Writeback(d, Value{}, in.WBHint, plan.Seq)
		}
	}
	eng.Flush()
	return eng.Stats(), nil
}

// ReplayOccupancy is Replay that additionally samples the window
// occupancy (live BOC entries) after every instruction, returning the
// histogram occupancy -> instruction count. This feeds the Fig. 9
// reproduction.
func ReplayOccupancy(stream []*isa.Instruction, cfg Config) (Stats, map[int]int64, error) {
	eng, err := NewEngine(cfg, func(uint8, Value, WriteCause) {})
	if err != nil {
		return Stats{}, nil, err
	}
	occ := make(map[int]int64)
	for _, in := range stream {
		plan := eng.Advance(in)
		for i := 0; i < plan.NNeedRF; i++ {
			eng.FillFromRF(plan.NeedRF[i], Value{}, plan.Seq)
		}
		if d, ok := in.DstReg(); ok {
			eng.Writeback(d, Value{}, in.WBHint, plan.Seq)
		}
		occ[eng.Occupancy()]++
	}
	eng.Flush()
	return eng.Stats(), occ, nil
}
