package core

import (
	"math/rand"
	"testing"

	"bow/internal/asm"
	"bow/internal/compiler"
	"bow/internal/isa"
)

// genProgram builds a random straight-line ALU program over a small
// register pool. Straight-line keeps the dynamic stream equal to the
// static one, so Replay is exact.
func genProgram(r *rand.Rand, n int) *asm.Program {
	ops := []isa.Opcode{isa.OpMov, isa.OpAdd, isa.OpMul, isa.OpMad, isa.OpXor, isa.OpShl}
	var p asm.Program
	reg := func() isa.Operand { return isa.Reg(uint8(r.Intn(10))) }
	for i := 0; i < n; i++ {
		op := ops[r.Intn(len(ops))]
		in := isa.Instruction{Op: op, PredReg: isa.PredTrue, HasDst: true,
			Dst: uint8(r.Intn(10))}
		nsrc := 2
		switch op {
		case isa.OpMov:
			nsrc = 1
		case isa.OpMad:
			nsrc = 3
		}
		for s := 0; s < nsrc; s++ {
			if r.Intn(4) == 0 {
				in.Srcs[s] = isa.Imm(r.Uint32())
			} else {
				in.Srcs[s] = reg()
			}
			in.NSrc++
		}
		in.PC = len(p.Code)
		p.Code = append(p.Code, in)
	}
	p.Code = append(p.Code, isa.Instruction{
		Op: isa.OpExit, PredReg: isa.PredTrue, PC: len(p.Code), Target: -1})
	p.Labels = map[string]int{}
	return &p
}

func toStream(p *asm.Program) []*isa.Instruction {
	out := make([]*isa.Instruction, 0, len(p.Code))
	for i := range p.Code {
		out = append(out, &p.Code[i])
	}
	return out
}

// TestPolicyInvariantsRandom replays random programs under every policy
// and checks the structural invariants that must hold regardless of the
// program:
//
//   - total operand reads are policy-independent;
//   - total destination writes are policy-independent;
//   - write-through writes the RF for every destination write;
//   - RF writes never increase as the policy gets smarter:
//     hints <= write-back <= write-through;
//   - reads served (bypassed + RF) always equals total reads.
func TestPolicyInvariantsRandom(t *testing.T) {
	r := rand.New(rand.NewSource(20200814))
	for trial := 0; trial < 200; trial++ {
		n := 5 + r.Intn(40)
		prog := genProgram(r, n)

		hinted := prog.Clone()
		if _, err := compiler.Annotate(hinted, 3); err != nil {
			t.Fatalf("trial %d: annotate: %v", trial, err)
		}

		run := func(p *asm.Program, pol Policy) Stats {
			st, err := Replay(toStream(p), Config{IW: 3, Policy: pol})
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			return st
		}
		base := run(prog, PolicyBaseline)
		wt := run(prog, PolicyWriteThrough)
		wb := run(prog, PolicyWriteBack)
		hints := run(hinted, PolicyCompilerHints)

		if base.TotalReads() != wt.TotalReads() || wt.TotalReads() != wb.TotalReads() ||
			wb.TotalReads() != hints.TotalReads() {
			t.Fatalf("trial %d: total reads differ: %d/%d/%d/%d",
				trial, base.TotalReads(), wt.TotalReads(), wb.TotalReads(), hints.TotalReads())
		}
		if wt.TotalWrites() != wb.TotalWrites() || wb.TotalWrites() != hints.TotalWrites() {
			t.Fatalf("trial %d: total writes differ: %d/%d/%d",
				trial, wt.TotalWrites(), wb.TotalWrites(), hints.TotalWrites())
		}
		if wt.RFWrites != wt.TotalWrites() {
			t.Fatalf("trial %d: write-through bypassed a write (%d of %d)",
				trial, wt.RFWrites, wt.TotalWrites())
		}
		if wb.RFWrites > wt.RFWrites {
			t.Fatalf("trial %d: write-back wrote more than write-through (%d > %d)",
				trial, wb.RFWrites, wt.RFWrites)
		}
		if hints.RFWrites > wb.RFWrites {
			t.Fatalf("trial %d: hints wrote more than write-back (%d > %d)",
				trial, hints.RFWrites, wb.RFWrites)
		}
		for _, st := range []Stats{wt, wb, hints} {
			if st.BypassedRead+st.RFReads != st.TotalReads() {
				t.Fatalf("trial %d: read accounting broken", trial)
			}
		}
		if base.BypassedRead != 0 {
			t.Fatalf("trial %d: baseline bypassed reads", trial)
		}
		// Read forwarding is policy-independent between WT and WB: both
		// buffer every access.
		if wt.BypassedRead != wb.BypassedRead {
			t.Fatalf("trial %d: WT and WB disagree on bypassed reads (%d vs %d)",
				trial, wt.BypassedRead, wb.BypassedRead)
		}
	}
}

// TestCapacityNeverLosesWrites replays random programs with tiny BOC
// capacities: however small the buffer, the sum of RF writes +
// coalesced + transient-drops + flush-drops must cover every
// destination write — nothing disappears.
func TestCapacityNeverLosesWrites(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 100; trial++ {
		prog := genProgram(r, 5+r.Intn(30))
		hinted := prog.Clone()
		if _, err := compiler.Annotate(hinted, 3); err != nil {
			t.Fatal(err)
		}
		destWrites := int64(0)
		for i := range prog.Code {
			if _, ok := prog.Code[i].DstReg(); ok {
				destWrites++
			}
		}
		for _, capa := range []int{1, 2, 3, 6, 12} {
			st, err := Replay(toStream(hinted), Config{IW: 3, Capacity: capa, Policy: PolicyCompilerHints})
			if err != nil {
				t.Fatal(err)
			}
			if st.TotalWrites() != destWrites {
				t.Fatalf("trial %d cap %d: %d writes accounted, want %d",
					trial, capa, st.TotalWrites(), destWrites)
			}
		}
	}
}

// TestWindowMonotonicity: a larger window can only bypass more reads
// (on straight-line code with unlimited capacity).
func TestWindowMonotonicity(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		prog := genProgram(r, 10+r.Intn(40))
		prev := int64(-1)
		for _, iw := range []int{2, 3, 4, 5, 6, 7} {
			st, err := Replay(toStream(prog), Config{IW: iw, Capacity: 64, Policy: PolicyWriteBack})
			if err != nil {
				t.Fatal(err)
			}
			if st.BypassedRead < prev {
				t.Fatalf("trial %d: bypassed reads shrank from %d to %d at IW %d",
					trial, prev, st.BypassedRead, iw)
			}
			prev = st.BypassedRead
		}
	}
}

// TestOccupancyBounded: the window never holds more entries than its
// capacity allows.
func TestOccupancyBounded(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 50; trial++ {
		prog := genProgram(r, 30)
		for _, capa := range []int{2, 4, 6} {
			_, occ, err := ReplayOccupancy(toStream(prog), Config{IW: 3, Capacity: capa, Policy: PolicyWriteBack})
			if err != nil {
				t.Fatal(err)
			}
			for k := range occ {
				if k > capa {
					t.Fatalf("trial %d: occupancy %d exceeds capacity %d", trial, k, capa)
				}
			}
		}
	}
}

// TestHintsEliminateAtLeastTransients: on random straight-line code the
// hint policy must drop every statically-transient value (default
// capacity, no early evictions).
func TestHintsEliminateAtLeastTransients(t *testing.T) {
	r := rand.New(rand.NewSource(123))
	for trial := 0; trial < 100; trial++ {
		prog := genProgram(r, 20)
		hinted := prog.Clone()
		st, err := compiler.Annotate(hinted, 3)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := Replay(toStream(hinted), Config{IW: 3, Capacity: 64, Policy: PolicyCompilerHints})
		if err != nil {
			t.Fatal(err)
		}
		// Every statically boc-only write must end up dropped or
		// coalesced — never in the RF.
		if got := rep.DroppedTransient + rep.CoalescedWrites + rep.FlushDropped; got < int64(st.CollectorOnly) {
			t.Fatalf("trial %d: %d transient writes but only %d eliminated",
				trial, st.CollectorOnly, got)
		}
		if rep.RFWriteCauses[CauseCapacityEvict] != 0 {
			t.Fatalf("trial %d: unexpected capacity evictions at capacity 64", trial)
		}
	}
}
