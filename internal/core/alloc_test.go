package core

import (
	"testing"

	"bow/internal/isa"
)

// allocWorkload drives one engine through a register-churning loop that
// exercises every hot path: misses reserving pending slots, fills,
// bypassed re-reads, writebacks installing entries, consolidation, and
// both window and capacity evictions.
func allocWorkload(eng *Engine) {
	ins := [4]*isa.Instruction{
		{Op: isa.OpAdd, PredReg: isa.PredTrue, HasDst: true, Dst: 1,
			Srcs: [3]isa.Operand{isa.Reg(2), isa.Reg(3)}, NSrc: 2},
		{Op: isa.OpMul, PredReg: isa.PredTrue, HasDst: true, Dst: 2,
			Srcs: [3]isa.Operand{isa.Reg(1), isa.Reg(4)}, NSrc: 2},
		{Op: isa.OpMov, PredReg: isa.PredTrue, HasDst: true, Dst: 3,
			Srcs: [3]isa.Operand{isa.Reg(9)}, NSrc: 1},
		{Op: isa.OpXor, PredReg: isa.PredTrue, HasDst: true, Dst: 1,
			Srcs: [3]isa.Operand{isa.Reg(7), isa.Reg(8)}, NSrc: 2},
	}
	var v Value
	for i := 0; i < 32; i++ {
		in := ins[i%len(ins)]
		plan := eng.Advance(in)
		for j := 0; j < plan.NNeedRF; j++ {
			eng.FillFromRF(plan.NeedRF[j], v, plan.Seq)
		}
		eng.Writeback(in.Dst, v, in.WBHint, plan.Seq)
	}
}

// TestSteadyStateAllocs pins the hot-path allocation fix: after the
// preallocated entry slab warms up, the window engine must not allocate
// at all, for any policy. This is the regression test for the
// bow-wt/bow-wr allocs-per-cycle bug BENCH_simrate.json exposed (1.94
// and 1.47 allocs/cycle vs 0.49 for baseline).
func TestSteadyStateAllocs(t *testing.T) {
	for _, pol := range []Policy{PolicyBaseline, PolicyWriteThrough,
		PolicyWriteBack, PolicyCompilerHints} {
		for _, cap := range []int{2, 12} { // force capacity evictions, then roomy
			eng, err := NewEngine(Config{IW: 3, Capacity: cap, Policy: pol},
				func(uint8, Value, WriteCause) {})
			if err != nil {
				t.Fatal(err)
			}
			allocWorkload(eng) // warm the free list
			if got := testing.AllocsPerRun(50, func() { allocWorkload(eng) }); got != 0 {
				t.Errorf("%v cap=%d: %.1f allocs per 32-instruction run, want 0",
					pol, cap, got)
			}
		}
	}
}

// TestSteadyStateAllocsDrain covers the drain/flush recycling paths:
// entries released by DrainToRF and Flush must return to the free list,
// not leak and force fresh heap allocations.
func TestSteadyStateAllocsDrain(t *testing.T) {
	eng, err := NewEngine(Config{IW: 3, Policy: PolicyWriteBack},
		func(uint8, Value, WriteCause) {})
	if err != nil {
		t.Fatal(err)
	}
	cycle := func() {
		allocWorkload(eng)
		eng.DrainToRF()
		allocWorkload(eng)
		eng.Flush()
	}
	cycle()
	if got := testing.AllocsPerRun(50, cycle); got != 0 {
		t.Errorf("drain/flush cycle: %.1f allocs, want 0", got)
	}
}
