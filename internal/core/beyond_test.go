package core

import (
	"testing"

	"bow/internal/asm"
	"bow/internal/isa"
)

// TestBeyondWindowKeepsValues: with capacity-bound management, a reuse
// far past the nominal window still forwards.
func TestBeyondWindowKeepsValues(t *testing.T) {
	src := `
.kernel t
  mov r1, 0x1
  nop
  nop
  nop
  nop
  nop
  nop
  add r2, r1, 0x1
  exit
`
	prog := asm.MustParse(src)
	fixed, err := Replay(stream(prog), Config{IW: 3, Capacity: 6, Policy: PolicyWriteBack})
	if err != nil {
		t.Fatal(err)
	}
	if fixed.BypassedRead != 0 {
		t.Errorf("fixed window bypassed a distance-7 reuse")
	}
	beyond, err := Replay(stream(prog), Config{IW: 3, Capacity: 6, Policy: PolicyWriteBack,
		BeyondWindow: true})
	if err != nil {
		t.Fatal(err)
	}
	if beyond.BypassedRead != 1 {
		t.Errorf("beyond-window missed the distance-7 reuse (bypassed=%d)", beyond.BypassedRead)
	}
	// The fixed window wrote r1 back at eviction; beyond-window never
	// evicted it, so it was dropped at flush.
	if fixed.RFWritesByReg[1] != 1 {
		t.Errorf("fixed: r1 writes = %d, want 1", fixed.RFWritesByReg[1])
	}
	if beyond.RFWritesByReg[1] != 0 {
		t.Errorf("beyond: r1 writes = %d, want 0", beyond.RFWritesByReg[1])
	}
}

// TestBeyondWindowCapacityStillBinds: the buffer budget still evicts.
func TestBeyondWindowCapacityStillBinds(t *testing.T) {
	// Touch 5 registers with a 2-entry budget; reuse the first.
	var code []isa.Instruction
	for r := uint8(1); r <= 5; r++ {
		code = append(code, isa.Instruction{Op: isa.OpMov, PredReg: isa.PredTrue,
			HasDst: true, Dst: r, Srcs: [3]isa.Operand{isa.Imm(uint32(r))}, NSrc: 1})
	}
	code = append(code, isa.Instruction{Op: isa.OpAdd, PredReg: isa.PredTrue,
		HasDst: true, Dst: 6, Srcs: [3]isa.Operand{isa.Reg(1), isa.Imm(1)}, NSrc: 2})
	prog := &asm.Program{Code: code, Labels: map[string]int{}}
	st, err := Replay(stream(prog), Config{IW: 3, Capacity: 2, Policy: PolicyWriteBack,
		BeyondWindow: true})
	if err != nil {
		t.Fatal(err)
	}
	if st.CapacityEvicts == 0 {
		t.Error("capacity never bound with 5 registers in a 2-entry buffer")
	}
	// r1 was evicted early (written back), so the late read comes from
	// the RF — no value lost.
	if st.RFWritesByReg[1] != 1 {
		t.Errorf("r1 writes = %d, want 1 (forced eviction)", st.RFWritesByReg[1])
	}
}

// TestBeyondWindowRejectsHints: Normalize must refuse the unsound
// combination.
func TestBeyondWindowRejectsHints(t *testing.T) {
	_, err := (Config{IW: 3, Policy: PolicyCompilerHints, BeyondWindow: true}).Normalize()
	if err == nil {
		t.Error("BeyondWindow with compiler hints must be rejected")
	}
}

// TestNoExtendSemantics: without extension, a reuse chain dies IW after
// the defining write.
func TestNoExtendSemantics(t *testing.T) {
	src := `
.kernel t
  mov r1, 0x1
  add r2, r1, 0x1
  add r3, r1, 0x1
  add r4, r1, 0x1
  exit
`
	prog := asm.MustParse(src)
	with, err := Replay(stream(prog), Config{IW: 3, Policy: PolicyWriteBack})
	if err != nil {
		t.Fatal(err)
	}
	// Extension: reads at seq2, seq3 keep refreshing; seq4 also hits.
	if with.BypassedRead != 3 {
		t.Errorf("extension: bypassed = %d, want 3", with.BypassedRead)
	}
	wout, err := Replay(stream(prog), Config{IW: 3, Policy: PolicyWriteBack, NoExtend: true})
	if err != nil {
		t.Fatal(err)
	}
	// No extension: r1 (written seq1) expires at seq4 (4-1 >= 3): reads
	// at seq2, seq3 hit; seq4 misses.
	if wout.BypassedRead != 2 {
		t.Errorf("no-extend: bypassed = %d, want 2", wout.BypassedRead)
	}
}
