package core

import (
	"fmt"

	"bow/internal/isa"
	"bow/internal/snap"
)

// SaveState serializes the stats block.
func (s *Stats) SaveState(enc *snap.Encoder) {
	enc.I64(s.Instructions)
	enc.I64(s.RFReads)
	enc.I64(s.BypassedRead)
	enc.I64(s.RFWrites)
	enc.I64(s.CoalescedWrites)
	enc.I64(s.DroppedTransient)
	enc.I64(s.FlushDropped)
	enc.I64(s.CapacityEvicts)
	enc.I64(s.BOCReads)
	enc.I64(s.BOCWrites)
	enc.I64(s.LastUseFrees)
	enc.I64(s.IntervalDrains)
	enc.I64(s.CompressedReads)
	enc.I64(s.CompressedWrites)
	for _, v := range s.RFWritesByReg {
		enc.I64(v)
	}
	for _, v := range s.RFWriteCauses {
		enc.I64(v)
	}
}

// LoadState restores a stats block written by SaveState.
func (s *Stats) LoadState(dec *snap.Decoder) {
	s.Instructions = dec.I64()
	s.RFReads = dec.I64()
	s.BypassedRead = dec.I64()
	s.RFWrites = dec.I64()
	s.CoalescedWrites = dec.I64()
	s.DroppedTransient = dec.I64()
	s.FlushDropped = dec.I64()
	s.CapacityEvicts = dec.I64()
	s.BOCReads = dec.I64()
	s.BOCWrites = dec.I64()
	s.LastUseFrees = dec.I64()
	s.IntervalDrains = dec.I64()
	s.CompressedReads = dec.I64()
	s.CompressedWrites = dec.I64()
	for i := range s.RFWritesByReg {
		s.RFWritesByReg[i] = dec.I64()
	}
	for i := range s.RFWriteCauses {
		s.RFWriteCauses[i] = dec.I64()
	}
}

// SaveState serializes the window: sequence counter, stats, and the
// live entries in insertion order. The free list and the byReg index
// are derived state and are rebuilt on load.
func (e *Engine) SaveState(enc *snap.Encoder) {
	enc.I64(e.seq)
	enc.I64(int64(e.interval))
	e.stats.SaveState(enc)
	enc.U32(uint32(len(e.live)))
	for _, en := range e.live {
		enc.U8(en.reg)
		enc.Words(en.val[:])
		enc.I64(en.lastAccess)
		enc.Bool(en.dirty)
		enc.U8(uint8(en.hint))
		enc.Bool(en.cancelWB)
		enc.Bool(en.pending)
	}
}

// LoadState restores a window written by SaveState. The target engine
// may be configured differently from the source (forked sweeps restore
// a baseline warm-up into bypassing configurations): that is accepted
// exactly when the serialized window is empty, because an empty window
// is a valid state of every configuration. A non-empty window only
// restores into a configuration that can hold it.
func (e *Engine) LoadState(dec *snap.Decoder) {
	e.seq = dec.I64()
	e.interval = int32(dec.I64())
	e.stats.LoadState(dec)
	n := int(dec.U32())
	if dec.Err() != nil {
		return
	}
	// Drop current live entries before repopulating.
	for _, en := range e.live {
		e.byReg[en.reg] = nil
		e.release(en)
	}
	e.live = e.live[:0]
	if n > 0 {
		if !e.cfg.Policy.Bypassing() {
			dec.Fail(fmt.Errorf("core: snapshot has %d window entries but target policy %v buffers nothing", n, e.cfg.Policy))
			return
		}
		if n > e.cfg.Capacity {
			dec.Fail(fmt.Errorf("core: snapshot has %d window entries, target capacity is %d", n, e.cfg.Capacity))
			return
		}
	}
	for i := 0; i < n; i++ {
		reg := dec.U8()
		en := e.allocEntry()
		dec.WordsInto(en.val[:])
		en.lastAccess = dec.I64()
		en.dirty = dec.Bool()
		en.hint = isa.WritebackHint(dec.U8())
		en.cancelWB = dec.Bool()
		en.pending = dec.Bool()
		if dec.Err() != nil {
			e.release(en)
			return
		}
		e.attach(reg, en)
	}
}

// WindowEmpty reports whether the BOC holds no live entries. The forked
// sweep planner checks this before restoring a warm-up snapshot into a
// differently windowed configuration.
func (e *Engine) WindowEmpty() bool { return len(e.live) == 0 }

// SaveState serializes one warp-wide value.
func (v *Value) SaveState(enc *snap.Encoder) { enc.Words(v[:]) }

// LoadState restores one warp-wide value.
func (v *Value) LoadState(dec *snap.Decoder) { dec.WordsInto(v[:]) }
