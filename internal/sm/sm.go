// Package sm implements the streaming-multiprocessor timing pipeline:
// warp scheduling and issue, operand collection (baseline OCUs or BOW's
// bypassing operand collectors), functional execution, the memory
// pipeline, and write-back — a cycle-driven model of the architecture in
// the paper's Figs. 2 and 5.
//
// The pipeline is simultaneously functional and timed: operand values
// flow through the same structures the timing model charges for, so a
// bookkeeping bug in the bypass logic shows up as a wrong architectural
// result, not just a wrong cycle count.
package sm

import (
	"fmt"

	"bow/internal/asm"
	"bow/internal/config"
	"bow/internal/core"
	"bow/internal/exec"
	"bow/internal/isa"
	"bow/internal/mem"
	"bow/internal/regfile"
	"bow/internal/scheduler"
	"bow/internal/scoreboard"
	"bow/internal/stats"
	"bow/internal/trace"
)

// Kernel is a launched grid.
type Kernel struct {
	Program   *asm.Program
	GridDim   int // CTAs in the grid
	BlockDim  int // threads per CTA (multiple of 32 recommended)
	SharedLen int // shared memory bytes per CTA
	// Params are the kernel parameters, readable with ld.param at byte
	// offsets 0,4,8...
	Params []uint32
	// Reconv maps branch PCs to reconvergence PCs (filled by Prepare).
	Reconv map[int]int
}

// WarpsPerCTA returns the warp count of one CTA.
func (k *Kernel) WarpsPerCTA() int {
	return (k.BlockDim + isa.WarpSize - 1) / isa.WarpSize
}

// Prepare computes the reconvergence table. It must be called once
// before launching.
func (k *Kernel) Prepare() error {
	cfg, err := buildCFG(k.Program)
	if err != nil {
		return err
	}
	k.Reconv = cfg.ReconvergencePCs()
	// The program is still single-owner here (each job parses its own
	// copy); cache the scoreboard's hazard masks before the pipeline
	// starts hammering CanIssue.
	for i := range k.Program.Code {
		k.Program.Code[i].FinalizeHazards()
	}
	return nil
}

// ctaWork is one thread block assigned to the SM.
//
//bow:state
type ctaWork struct {
	ctaID    int // global CTA index within the grid
	shared   *mem.SharedMemory
	warps    []int // SM warp slots used
	arrived  int   // barrier arrivals
	liveWarp int   // warps not yet exited
}

// SM is one streaming multiprocessor.
//
//bow:state
type SM struct {
	id   int         //bow:resetskip -- SM identity, fixed at construction; a recycled SM keeps its slot in the device
	gcfg config.GPU  //bow:snapskip -- chip configuration, fixed at construction; the Device header hashes it for restore validation
	bcfg core.Config //bow:snapskip -- BOW window configuration (policy baseline disables); restore validates window state structurally instead

	kernel *Kernel
	global *mem.Memory //bow:snapskip -- functional global memory is owned and serialized by the Device (one store, many SMs)
	hier   *mem.Hierarchy

	rf     *regfile.File
	sb     *scoreboard.Board
	pipes  *exec.Pipes //bow:snapskip -- per-cycle issue-slot counters; empty at every cycle boundary, where snapshots are taken
	scheds []*scheduler.Scheduler

	warps   []*warpCtx
	engines []*core.Engine // one BOC window engine per warp slot
	ctas    map[int]*ctaWork

	cycle int64

	// wheel is the timing-wheel event calendar (typed completion
	// records, free-listed — no map hashing or closure allocation in
	// the cycle loop). It also owns the event free list in reference
	// mode.
	wheel *eventWheel

	// ref selects the reference cycle loop (config.GPU.ReferenceLoop):
	// the seed's map calendar and scan-everything dispatch, kept
	// in-tree as the oracle for the differential suite.
	ref        bool               //bow:resetskip -- loop-flavor selector, fixed at construction; Reset recycles within one flavor
	refEvents  map[int64][]*event //bow:snapskip -- reference-loop calendar; reference SMs refuse snapshots (SaveState fails)
	refScratch []*inflight        //bow:snapskip -- reference dispatch scratch; reference SMs refuse snapshots

	// active lists resident, not-yet-done warps so the cycle loop
	// skips empty warp slots entirely.
	active []*warpCtx //bow:derived -- rebuilt in slot order by LoadState from restored warp residency

	// readyHead/readyTail is the dispatch-ordered ready list: operand-
	// complete instructions linked intrusively in (issueCycle, slot,
	// seq) order, replacing the per-cycle scan + sort.
	readyHead *inflight
	readyTail *inflight //bow:derived -- tail of the ready list; LoadState rebuilds it from the serialized head-to-tail walk

	// freeInflights recycles completed instruction records.
	freeInflights []*inflight //bow:snapskip -- free pool; rebuilt empty on restore and deliberately kept warm across Reset

	// segScratch is the reusable coalescing buffer (executeMem).
	segScratch []uint32 //bow:snapskip -- per-instruction coalescing scratch; dead between cycles

	// Pending CTA-issue bookkeeping.
	freeWarpSlots int
	freeTBSlots   int

	st RunStats

	// busyCollectors counts operand collectors in use across the SM; the
	// pool (gcfg.NumOCUs) gates issue.
	busyCollectors int //bow:derived -- recounted by LoadState from restored collector lists

	// RegSnapshots, when enabled, captures each warp's effective
	// register values at exit, keyed by (ctaID, warpInCTA).
	CaptureRegs  bool //bow:snapskip -- capture switch, set by the harness; not simulation state
	RegSnapshots map[[2]int][]core.Value

	// CaptureTrace, when enabled, records each warp's issue-ordered
	// dynamic instruction stream (internal/trace consumes these).
	CaptureTrace bool //bow:snapskip -- capture switch, set by the harness; not simulation state
	Traces       map[[2]int][]*isa.Instruction

	// Tracer, when non-nil, receives cycle-level events (warp issues,
	// BOC hits/misses/evictions, consolidations, bank conflicts, wheel
	// pops). Every emission site guards on nil, so a disabled tracer
	// costs one branch per site and zero allocations.
	Tracer *trace.CycleTracer //bow:snapskip -- observability wiring; does not affect the simulation

	// lastBankConflicts remembers the RF conflict counter between
	// cycles so the tracer can emit per-cycle conflict deltas.
	lastBankConflicts int64 //bow:derived -- tracer delta baseline; LoadState reseeds it from the restored RF counter

	// canIssue is the eligibility predicate handed to the warp
	// schedulers, built once at construction so issue() does not
	// allocate a capturing closure per scheduler per cycle.
	canIssue func(wid int) bool //bow:snapskip -- closure wiring, built once at construction
}

// New creates an SM.
func New(id int, gcfg config.GPU, bcfg core.Config, kernel *Kernel,
	global *mem.Memory, l2 *mem.Cache) (*SM, error) {
	bcfg, err := bcfg.Normalize()
	if err != nil {
		return nil, err
	}
	if kernel.Reconv == nil {
		return nil, fmt.Errorf("sm: kernel not Prepared")
	}
	rf, err := regfile.New(regfile.Config{
		NumBanks:      gcfg.NumRFBanks,
		WarpRegsPerB:  gcfg.RegFileKBPerSM * 1024 / (gcfg.NumRFBanks * 128),
		MaxWarps:      gcfg.MaxWarpsPerSM,
		AccessLatency: gcfg.RFAccessLat,
	})
	if err != nil {
		return nil, err
	}
	l1, err := mem.NewCache(fmt.Sprintf("L1[%d]", id), gcfg.L1SizeKB*1024, gcfg.L1LineBytes, gcfg.L1Assoc)
	if err != nil {
		return nil, err
	}
	skind, err := scheduler.ParseKind(gcfg.Scheduler)
	if err != nil {
		return nil, err
	}

	s := &SM{
		id:     id,
		gcfg:   gcfg,
		bcfg:   bcfg,
		kernel: kernel,
		global: global,
		hier: &mem.Hierarchy{
			L1: l1, L2: l2,
			L1HitCycles: gcfg.L1HitCycles,
			L2HitCycles: gcfg.L2HitCycles,
			DRAMCycles:  gcfg.DRAMCycles,
		},
		rf: rf,
		sb: scoreboard.New(gcfg.MaxWarpsPerSM),
		pipes: exec.NewPipes(exec.PipeConfig{
			ALULatency: gcfg.ALULatency, FPULatency: gcfg.FPULatency,
			SFULatency: gcfg.SFULatency,
			NumALU:     gcfg.NumALU, NumFPU: gcfg.NumFPU, NumSFU: gcfg.NumSFU,
			NumLSU: gcfg.MaxL1PerCyc, NumCtrl: gcfg.NumSched,
		}),
		warps:         make([]*warpCtx, gcfg.MaxWarpsPerSM),
		engines:       make([]*core.Engine, gcfg.MaxWarpsPerSM),
		ctas:          make(map[int]*ctaWork),
		freeWarpSlots: gcfg.MaxWarpsPerSM,
		freeTBSlots:   gcfg.MaxTBsPerSM,
		RegSnapshots:  make(map[[2]int][]core.Value),
		Traces:        make(map[[2]int][]*isa.Instruction),
	}
	s.canIssue = func(wid int) bool { return s.canIssueWarp(s.warps[wid]) }
	s.wheel = newEventWheel(wheelSpan(gcfg.ALULatency, gcfg.FPULatency,
		gcfg.SFULatency, gcfg.L1HitCycles, gcfg.L2HitCycles,
		gcfg.DRAMCycles, gcfg.RFAccessLat))
	s.ref = gcfg.ReferenceLoop
	if s.ref {
		s.refEvents = make(map[int64][]*event)
	}
	s.st.OccupancyBOC = stats.NewHistogram()
	s.st.OccupancyOCU = stats.NewHistogram()
	s.st.SrcOperands = stats.NewHistogram()

	// One slab each for the per-warp collector and fill-waiter lists:
	// their capacities are architectural constants, and slab slicing
	// keeps SM construction (on the job engine's critical path) cheap.
	collectorSlab := make([]*inflight, gcfg.MaxWarpsPerSM*collectorsPerWarp)
	waiterSlab := make([]fillWaiter, gcfg.MaxWarpsPerSM*collectorsPerWarp*isa.MaxSrcOperands)
	for w := 0; w < gcfg.MaxWarpsPerSM; w++ {
		s.warps[w] = &warpCtx{
			sm: s, slot: w, ctaID: -1, activeIdx: -1,
			collectors:  collectorSlab[w*collectorsPerWarp : w*collectorsPerWarp : (w+1)*collectorsPerWarp],
			fillWaiters: waiterSlab[w*collectorsPerWarp*isa.MaxSrcOperands : w*collectorsPerWarp*isa.MaxSrcOperands : (w+1)*collectorsPerWarp*isa.MaxSrcOperands],
		}
	}
	if err := s.buildEngines(); err != nil {
		return nil, err
	}
	for sc := 0; sc < gcfg.NumSched; sc++ {
		ids := make([]int, 0, gcfg.MaxWarpsPerSM/gcfg.NumSched)
		for w := sc; w < gcfg.MaxWarpsPerSM; w += gcfg.NumSched {
			ids = append(ids, w)
		}
		s.scheds = append(s.scheds, scheduler.New(skind, ids))
	}
	return s, nil
}

// buildEngines constructs one window engine per warp slot from the
// SM's current bcfg. Engines are the only per-warp component whose
// shape depends on the window policy, so Reset rebuilds them (they are
// small) while everything config-shaped is recycled in place.
func (s *SM) buildEngines() error {
	for w := range s.engines {
		wslot := w
		eng, err := core.NewEngine(s.bcfg, func(reg uint8, val core.Value, cause core.WriteCause) {
			if s.Tracer != nil &&
				(cause == core.CauseWindowEvict || cause == core.CauseCapacityEvict ||
					cause == core.CauseIntervalDrain) {
				s.Tracer.Emit(s.cycle, s.id, wslot, trace.EvBOCEvict, int32(reg))
			}
			// Functional value propagates instantly so Peek-based merge
			// bases and oracle snapshots are always architecturally
			// current; the queued write models the bank-port timing.
			s.rf.Poke(wslot, reg, val)
			s.rf.EnqueueWrite(wslot, reg, val)
		})
		if err != nil {
			return err
		}
		s.engines[wslot] = eng
	}
	return nil
}

// Reset rebinds a retired SM to a new launch, reusing every
// configuration-shaped structure in place: the register file and cache
// models, the scoreboard, pipes, schedulers, the timing-wheel calendar
// (including its warmed event free list), the warp contexts with their
// collector/waiter slabs, the in-flight record pool, and the stats
// histograms. Only the window engines — the one per-warp component
// shaped by the window policy — are rebuilt. A reset SM behaves
// bit-identically to one built by New; the batch differential suite
// holds the recycled path to that standard. The previous run may have
// ended early (cycle-limit error): in-flight instructions are dropped
// and every pending event is drained, so even a dirty SM resets clean.
func (s *SM) Reset(bcfg core.Config, kernel *Kernel, global *mem.Memory) error {
	bcfg, err := bcfg.Normalize()
	if err != nil {
		return err
	}
	if kernel.Reconv == nil {
		return fmt.Errorf("sm: kernel not Prepared")
	}
	s.bcfg = bcfg
	s.kernel = kernel
	s.global = global

	s.rf.Reset()
	s.hier.L1.Reset()
	s.sb.Reset()
	s.pipes.Reset()
	for _, sc := range s.scheds {
		sc.Reset()
	}
	s.wheel.reset()
	if s.ref {
		clear(s.refEvents)
		s.refScratch = s.refScratch[:0]
	}

	for _, w := range s.warps {
		w.ctaID = -1
		w.warpInCTA = 0
		w.activeIdx = -1
		w.done, w.stalled, w.atBarrier = false, false, false
		w.issued = 0
		w.preds = [isa.NumPredRegs]uint32{}
		w.stack = w.stack[:0]
		// Clear the full slab sections, not just [:len]: an errored run
		// leaves in-flight records behind, and stale slab pointers would
		// keep them (and everything they reference) alive.
		cs := w.collectors[:cap(w.collectors)]
		for i := range cs {
			cs[i] = nil
		}
		w.collectors = cs[:0]
		fw := w.fillWaiters[:cap(w.fillWaiters)]
		for i := range fw {
			fw[i] = fillWaiter{}
		}
		w.fillWaiters = fw[:0]
	}
	if err := s.buildEngines(); err != nil {
		return err
	}

	for i := range s.active {
		s.active[i] = nil
	}
	s.active = s.active[:0]
	s.readyHead, s.readyTail = nil, nil
	clear(s.ctas)
	s.cycle = 0
	s.busyCollectors = 0
	s.lastBankConflicts = 0
	s.freeWarpSlots = s.gcfg.MaxWarpsPerSM
	s.freeTBSlots = s.gcfg.MaxTBsPerSM
	clear(s.RegSnapshots)
	clear(s.Traces)

	hBOC, hOCU, hSrc := s.st.OccupancyBOC, s.st.OccupancyOCU, s.st.SrcOperands
	hBOC.Reset()
	hOCU.Reset()
	hSrc.Reset()
	s.st = RunStats{OccupancyBOC: hBOC, OccupancyOCU: hOCU, SrcOperands: hSrc}
	return nil
}

// CanAcceptCTA reports whether a new thread block fits.
func (s *SM) CanAcceptCTA() bool {
	return s.freeTBSlots > 0 && s.freeWarpSlots >= s.kernel.WarpsPerCTA()
}

// AssignCTA places CTA ctaID on this SM.
func (s *SM) AssignCTA(ctaID int) error {
	if !s.CanAcceptCTA() {
		return fmt.Errorf("sm %d: no room for CTA %d", s.id, ctaID)
	}
	nw := s.kernel.WarpsPerCTA()
	work := &ctaWork{
		ctaID:    ctaID,
		shared:   mem.NewShared(maxInt(s.kernel.SharedLen, 4)),
		liveWarp: nw,
	}
	assigned := 0
	for w := 0; w < len(s.warps) && assigned < nw; w++ {
		if s.warps[w].ctaID == -1 {
			s.initWarp(s.warps[w], ctaID, assigned)
			work.warps = append(work.warps, w)
			assigned++
		}
	}
	s.freeWarpSlots -= nw
	s.freeTBSlots--
	s.ctas[ctaID] = work
	return nil
}

// BusyCTAs returns how many thread blocks are resident.
func (s *SM) BusyCTAs() int { return len(s.ctas) }

// Idle reports whether the SM has no resident work.
func (s *SM) Idle() bool { return len(s.ctas) == 0 }

// Cycle advances the SM one clock.
//
//bow:hotpath
func (s *SM) Cycle() {
	s.cycle++
	s.st.Cycles++
	s.pipes.NewCycle(s.cycle)

	// 1. Register file banks serve one request each; completed reads
	// queue operand deliveries into the collectors.
	s.rf.Cycle()
	if s.Tracer != nil {
		if c := s.rf.Stats().BankConflicts; c > s.lastBankConflicts {
			s.Tracer.Emit(s.cycle, s.id, -1, trace.EvBankConflict,
				int32(c-s.lastBankConflicts))
			s.lastBankConflicts = c
		}
	}

	// 2. Scheduled events: writebacks, memory completions, branch
	// resolution.
	s.runEvents()

	if s.ref {
		s.cycleRefTail()
		return
	}

	// 3. Collectors consume one delivered operand each (single-ported
	// OCU/BOC); an instruction whose last operand lands becomes ready
	// and enters the dispatch-ordered list. Only active warps can hold
	// collectors, so idle slots cost nothing.
	for _, w := range s.active {
		for _, f := range w.collectors {
			f.consumeDelivery()
			if !f.ready && f.collected() {
				s.markReady(w, f)
			}
		}
	}

	// 4. Dispatch ready instructions to functional units.
	s.dispatch()

	// 5. Issue new instructions.
	s.issue()

	// 6. Occupancy sampling (Fig. 9): one sample per active warp-cycle.
	if s.bcfg.Policy.Bypassing() {
		for _, w := range s.active {
			s.st.OccupancyBOC.Observe(s.engines[w.slot].Occupancy())
		}
	}
}

// cycleRefTail is steps 3-6 of the reference loop: full warp scans and
// the sort-based dispatch, as in the seed implementation.
func (s *SM) cycleRefTail() {
	for _, w := range s.warps {
		for _, f := range w.collectors {
			f.consumeDelivery()
		}
	}
	s.dispatchRef()
	s.issue()
	for _, w := range s.warps {
		if w.ctaID >= 0 && !w.done {
			if s.bcfg.Policy.Bypassing() {
				s.st.OccupancyBOC.Observe(s.engines[w.slot].Occupancy())
			}
		}
	}
}

// markReady transitions an instruction to the ready (operands
// complete) state: reads release their scoreboard reservations and the
// instruction enters the dispatch order. The reference loop performs
// the same transition inside its dispatch scan; both run after the
// collector-port stage and before dispatch, so the cycle accounting is
// identical.
func (s *SM) markReady(w *warpCtx, f *inflight) {
	f.ready = true
	f.collectCycle = s.cycle
	s.sb.ReleaseReads(w.slot, f.in)
	s.readyInsert(f)
}

// Stats returns the accumulated run statistics.
func (s *SM) Stats() *RunStats { return &s.st }

// RegFileStats exposes the register file counters.
func (s *SM) RegFileStats() regfile.Stats { return s.rf.Stats() }

// EngineStats sums the per-warp window engine counters.
func (s *SM) EngineStats() core.Stats {
	var total core.Stats
	for _, e := range s.engines {
		st := e.Stats()
		total.Merge(&st)
	}
	return total
}

// L1 returns the L1 cache (stats access).
func (s *SM) L1() *mem.Cache { return s.hier.L1 }

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
