package sm

import "testing"

// TestEventWheelOrder checks that events fire at their cycle in
// scheduling order, including events parked beyond the wheel horizon.
func TestEventWheelOrder(t *testing.T) {
	w := newEventWheel(10) // clamps to the 64-slot minimum
	if len(w.slots) != 64 {
		t.Fatalf("wheel size = %d, want 64", len(w.slots))
	}
	type sched struct {
		at  int64
		reg uint8 // payload to track identity
	}
	// Mix near events, same-cycle events (order matters), and far events
	// beyond the 63-cycle horizon.
	scheds := []sched{
		{3, 0}, {3, 1}, {5, 2}, {100, 3}, {3, 4}, {40, 5}, {100, 6},
	}
	for _, sc := range scheds {
		ev := w.alloc()
		ev.reg = sc.reg
		w.schedule(0, sc.at, ev)
	}
	var fired []struct {
		at  int64
		reg uint8
	}
	for now := int64(1); now <= 128; now++ {
		for ev := w.due(now); ev != nil; {
			next := ev.next
			fired = append(fired, struct {
				at  int64
				reg uint8
			}{now, ev.reg})
			w.release(ev)
			ev = next
		}
	}
	want := []struct {
		at  int64
		reg uint8
	}{
		{3, 0}, {3, 1}, {3, 4}, {5, 2}, {40, 5}, {100, 3}, {100, 6},
	}
	if len(fired) != len(want) {
		t.Fatalf("fired %d events, want %d: %v", len(fired), len(want), fired)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Errorf("fired[%d] = %+v, want %+v", i, fired[i], want[i])
		}
	}
	if len(w.far) != 0 {
		t.Errorf("far list not drained: %d left", len(w.far))
	}
}

// TestEventWheelFreelist checks that released records are recycled.
func TestEventWheelFreelist(t *testing.T) {
	w := newEventWheel(4)
	ev := w.alloc()
	ev.reg = 7
	w.release(ev)
	ev2 := w.alloc()
	if ev2 != ev {
		t.Error("released event not recycled")
	}
	if ev2.reg != 0 || ev2.next != nil {
		t.Errorf("recycled event not cleared: %+v", ev2)
	}
}

// TestReadyListOrder checks the dispatch-ordered intrusive list against
// its sort-based definition: (issueCycle, warp slot, seq).
func TestReadyListOrder(t *testing.T) {
	s := &SM{}
	w0, w1 := &warpCtx{slot: 0}, &warpCtx{slot: 3}
	mk := func(w *warpCtx, issue int64, seq int64) *inflight {
		return &inflight{warp: w, issueCycle: issue, seq: seq}
	}
	// Insert out of order; expect sorted walk.
	a := mk(w1, 5, 1)
	b := mk(w0, 5, 2)
	c := mk(w0, 2, 0)
	d := mk(w0, 5, 9) // same warp+cycle as b, later program order
	e := mk(w1, 7, 3)
	for _, f := range []*inflight{a, b, c, d, e} {
		s.readyInsert(f)
	}
	want := []*inflight{c, b, d, a, e}
	i := 0
	for f := s.readyHead; f != nil; f = f.rnext {
		if i >= len(want) || f != want[i] {
			t.Fatalf("ready list position %d wrong", i)
		}
		i++
	}
	if i != len(want) {
		t.Fatalf("ready list has %d entries, want %d", i, len(want))
	}
	// Remove the middle and the head; the walk stays sorted and the
	// tail stays reachable.
	s.readyRemove(d)
	s.readyRemove(c)
	want = []*inflight{b, a, e}
	i = 0
	for f := s.readyHead; f != nil; f = f.rnext {
		if f != want[i] {
			t.Fatalf("after remove, position %d wrong", i)
		}
		i++
	}
	if s.readyTail != e {
		t.Error("tail pointer stale after removals")
	}
}

// TestRemoveCollectorClearsTail guards the freed-slot fix: the swap
// must nil the vacated tail entry so the dispatched record doesn't
// linger behind len() and keep its operand values live.
func TestRemoveCollectorClearsTail(t *testing.T) {
	w := &warpCtx{}
	f1, f2 := &inflight{}, &inflight{}
	w.collectors = append(w.collectors, f1, f2)
	removeCollector(w, f1)
	if len(w.collectors) != 1 || w.collectors[0] != f2 {
		t.Fatalf("collectors = %v", w.collectors)
	}
	if tail := w.collectors[:2][1]; tail != nil {
		t.Error("vacated tail slot still references the removed record")
	}
}
