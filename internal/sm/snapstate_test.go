package sm

import (
	"bytes"
	"reflect"
	"testing"

	"bow/internal/asm"
	"bow/internal/config"
	"bow/internal/core"
	"bow/internal/mem"
	"bow/internal/snap"
)

// snapRig holds an SM together with the device-level state (global
// memory, L2) that an SM snapshot does not carry, so tests can
// checkpoint the complete simulation state of a single-SM device.
type snapRig struct {
	s  *SM
	m  *mem.Memory
	l2 *mem.Cache
}

func newSnapRig(t *testing.T, src string, grid, block int, params []uint32, bcfg core.Config) *snapRig {
	t.Helper()
	prog, err := asm.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	k := &Kernel{Program: prog, GridDim: grid, BlockDim: block, Params: params}
	if err := k.Prepare(); err != nil {
		t.Fatal(err)
	}
	g := config.SimDefault()
	g.NumSMs = 1
	l2, err := mem.NewCache("L2", g.L2SizeKB*1024, g.L2LineBytes, g.L2Assoc)
	if err != nil {
		t.Fatal(err)
	}
	m := mem.NewMemory()
	s, err := New(0, g, bcfg, k, m, l2)
	if err != nil {
		t.Fatal(err)
	}
	return &snapRig{s: s, m: m, l2: l2}
}

func (r *snapRig) save(t *testing.T) []byte {
	t.Helper()
	enc := snap.NewEncoder()
	r.m.SaveState(enc)
	r.l2.SaveState(enc)
	r.s.SaveState(enc)
	b, err := enc.Bytes()
	if err != nil {
		t.Fatalf("save: %v", err)
	}
	return b
}

func (r *snapRig) load(t *testing.T, b []byte) {
	t.Helper()
	dec := snap.NewDecoder(b)
	r.m.LoadState(dec)
	r.l2.LoadState(dec)
	r.s.LoadState(dec)
	if err := dec.Close(); err != nil {
		t.Fatalf("load: %v", err)
	}
}

// snapLoopKernel sums an 8-word window of the input per thread and
// stores the result: enough loads, ALU work, and a data-dependent
// backward branch to populate collectors, the wheel, and the caches at
// almost any snapshot cycle.
const snapLoopKernel = `
.kernel snaploop
  mov r0, %tid.x
  mov r1, %ctaid.x
  mov r2, %ntid.x
  mad r3, r1, r2, r0
  shl r4, r3, 0x2
  ld.param r5, [rz+0x0]
  ld.param r6, [rz+0x4]
  add r7, r5, r4
  mov r8, 0x0
  mov r9, 0x0
  mov r10, 0x8
SLOOP:
  ld.global r11, [r7+0x0]
  add r8, r8, r11
  add r7, r7, 0x4
  add r9, r9, 0x1
  setp.lt p0, r9, r10
  @p0 bra SLOOP
  add r12, r6, r4
  st.global [r12+0x0], r8
  exit
`

const (
	snapIn   = 0x1000
	snapOut  = 0x4000
	snapGrid = 2
	snapBlk  = 64
)

func primeSnapInput(t *testing.T, m *mem.Memory) {
	t.Helper()
	// Threads read in[g..g+7]; the last thread reaches index n+7.
	n := snapGrid*snapBlk + 8
	for i := 0; i < n; i++ {
		if err := m.Write32(snapIn+uint32(4*i), uint32(i*i+3)); err != nil {
			t.Fatal(err)
		}
	}
}

func runToIdle(t *testing.T, s *SM, bound int) int {
	t.Helper()
	cycles := 0
	for ; cycles < bound && !s.Idle(); cycles++ {
		s.Cycle()
	}
	if !s.Idle() {
		t.Fatalf("SM not idle after %d cycles", bound)
	}
	return cycles
}

// TestSMSnapshotMidRunDifferential checkpoints a running SM at several
// cycles, restores each snapshot into a fresh SM, continues both to
// completion, and requires the restored run to match a cold run
// exactly: same statistics, same register file, same memory end state.
func TestSMSnapshotMidRunDifferential(t *testing.T) {
	for _, bcfg := range []core.Config{
		{Policy: core.PolicyBaseline},
		{Policy: core.PolicyWriteThrough, IW: 4, Capacity: 8},
		{Policy: core.PolicyWriteBack, IW: 4, Capacity: 8},
	} {
		params := []uint32{snapIn, snapOut}
		oracle := newSnapRig(t, snapLoopKernel, snapGrid, snapBlk, params, bcfg)
		primeSnapInput(t, oracle.m)
		for i := 0; i < snapGrid; i++ {
			if err := oracle.s.AssignCTA(i); err != nil {
				t.Fatal(err)
			}
		}
		runToIdle(t, oracle.s, 100000)
		wantStats := *oracle.s.Stats()
		wantMem := oracle.m.Snapshot()

		for _, snapAt := range []int{1, 7, 33, 120, 500} {
			live := newSnapRig(t, snapLoopKernel, snapGrid, snapBlk, params, bcfg)
			primeSnapInput(t, live.m)
			for i := 0; i < snapGrid; i++ {
				if err := live.s.AssignCTA(i); err != nil {
					t.Fatal(err)
				}
			}
			for i := 0; i < snapAt && !live.s.Idle(); i++ {
				live.s.Cycle()
			}
			blob := live.save(t)

			restored := newSnapRig(t, snapLoopKernel, snapGrid, snapBlk, params, bcfg)
			restored.load(t, blob)

			// Restored state must re-serialize byte-identically: the walk
			// order is canonical, not an accident of pointer layout.
			if blob2 := restored.save(t); !bytes.Equal(blob, blob2) {
				t.Fatalf("policy %v snap@%d: restored state does not re-serialize identically", bcfg.Policy, snapAt)
			}

			// Continue both; they must stay in lockstep.
			runToIdle(t, live.s, 100000)
			runToIdle(t, restored.s, 100000)
			liveStats, restStats := *live.s.Stats(), *restored.s.Stats()
			if !reflect.DeepEqual(liveStats, wantStats) {
				t.Fatalf("policy %v snap@%d: snapshotted run diverged from oracle: %+v vs %+v",
					bcfg.Policy, snapAt, liveStats, wantStats)
			}
			if !reflect.DeepEqual(restStats, wantStats) {
				t.Fatalf("policy %v snap@%d: restored run diverged from oracle: %+v vs %+v",
					bcfg.Policy, snapAt, restStats, wantStats)
			}
			if got := restored.m.Snapshot(); !reflect.DeepEqual(got, wantMem) {
				t.Fatalf("policy %v snap@%d: restored memory end state differs", bcfg.Policy, snapAt)
			}
			if restored.s.RegFileStats() != live.s.RegFileStats() {
				t.Fatalf("policy %v snap@%d: register file stats diverged", bcfg.Policy, snapAt)
			}
		}
	}
}

// TestSMSnapshotWheelHorizon pins the far-event contract across a
// checkpoint (the satellite case for horizon-boundary migration): an
// event exactly at now+mask stays on the wheel, one cycle past it parks
// on the far list, and a snapshot taken mid-rotation restores both so
// they fire at the same cycles in the same order.
func TestSMSnapshotWheelHorizon(t *testing.T) {
	rig := newSnapRig(t, snapLoopKernel, snapGrid, snapBlk, []uint32{snapIn, snapOut}, core.Config{Policy: core.PolicyBaseline})
	s := rig.s
	mask := s.wheel.mask

	// Advance mid-rotation so slot indexing wraps: an empty SM's cycle
	// counter moves without touching the wheel.
	for i := int64(0); i < mask/2+3; i++ {
		s.Cycle()
	}
	now := s.cycle

	type stamp struct {
		at  int64
		reg uint8
	}
	plan := []stamp{
		{now + 1, 10},        // next cycle
		{now + mask, 20},     // exactly at the horizon: wheel
		{now + mask + 1, 30}, // one past the horizon: far list
		{now + mask + 7, 40}, // deeper far event
		{now + mask, 21},     // same-cycle pair to pin chain order
	}
	for _, p := range plan {
		ev := s.wheel.alloc()
		ev.kind = evNoDest
		ev.reg = p.reg
		s.wheel.schedule(now, p.at, ev)
	}
	if got := len(s.wheel.far); got != 2 {
		t.Fatalf("far list has %d events before snapshot, want 2", got)
	}

	blob := rig.save(t)
	restored := newSnapRig(t, snapLoopKernel, snapGrid, snapBlk, []uint32{snapIn, snapOut}, core.Config{Policy: core.PolicyBaseline})
	restored.load(t, blob)
	if got := len(restored.s.wheel.far); got != 2 {
		t.Fatalf("far list has %d events after restore, want 2", got)
	}
	if blob2 := restored.save(t); !bytes.Equal(blob, blob2) {
		t.Fatal("restored wheel state does not re-serialize identically")
	}

	// Pump both wheels directly and compare complete firing schedules.
	fire := func(w *eventWheel) []stamp {
		var out []stamp
		for c := now + 1; c <= now+mask+16; c++ {
			for ev := w.due(c); ev != nil; {
				next := ev.next
				out = append(out, stamp{c, ev.reg})
				w.release(ev)
				ev = next
			}
		}
		return out
	}
	got := fire(restored.s.wheel)
	want := []stamp{
		{now + 1, 10},
		{now + mask, 20},
		{now + mask, 21},
		{now + mask + 1, 30},
		{now + mask + 7, 40},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("restored firing schedule = %v, want %v", got, want)
	}
	if orig := fire(rig.s.wheel); !reflect.DeepEqual(orig, want) {
		t.Fatalf("original firing schedule = %v, want %v", orig, want)
	}
	if len(restored.s.wheel.far) != 0 {
		t.Error("restored far list not drained")
	}
}

// TestSMSnapshotRejectsReferenceLoop: the map-calendar reference mode
// has no deterministic serialization order and must refuse snapshots.
func TestSMSnapshotRejectsReferenceLoop(t *testing.T) {
	rig := newSnapRig(t, snapLoopKernel, 1, 32, []uint32{snapIn, snapOut}, core.Config{Policy: core.PolicyBaseline})
	rig.s.ref = true
	enc := snap.NewEncoder()
	rig.s.SaveState(enc)
	if _, err := enc.Bytes(); err == nil {
		t.Fatal("reference-loop SM serialized without error")
	}
}
