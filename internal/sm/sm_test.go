package sm

import (
	"testing"

	"bow/internal/asm"
	"bow/internal/config"
	"bow/internal/core"
	"bow/internal/isa"
	"bow/internal/mem"
)

func testSM(t *testing.T, src string, grid, block int, params []uint32, bcfg core.Config) *SM {
	t.Helper()
	prog, err := asm.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	k := &Kernel{Program: prog, GridDim: grid, BlockDim: block, Params: params}
	if err := k.Prepare(); err != nil {
		t.Fatal(err)
	}
	g := config.SimDefault()
	g.NumSMs = 1
	l2, err := mem.NewCache("L2", g.L2SizeKB*1024, g.L2LineBytes, g.L2Assoc)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(0, g, bcfg, k, mem.NewMemory(), l2)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

const tinyKernel = `
.kernel tiny
  mov r1, 0x1
  add r2, r1, r1
  exit
`

func TestKernelPrepare(t *testing.T) {
	prog := asm.MustParse(tinyKernel)
	k := &Kernel{Program: prog, GridDim: 1, BlockDim: 64}
	if k.WarpsPerCTA() != 2 {
		t.Errorf("WarpsPerCTA = %d, want 2", k.WarpsPerCTA())
	}
	if err := k.Prepare(); err != nil {
		t.Fatal(err)
	}
	if k.Reconv == nil {
		t.Error("Prepare did not fill Reconv")
	}
	k2 := &Kernel{Program: prog, GridDim: 1, BlockDim: 65}
	if k2.WarpsPerCTA() != 3 {
		t.Errorf("partial warp not counted: %d", k2.WarpsPerCTA())
	}
}

func TestCTAAssignmentAccounting(t *testing.T) {
	s := testSM(t, tinyKernel, 4, 128, nil, core.Config{Policy: core.PolicyBaseline})
	if !s.CanAcceptCTA() {
		t.Fatal("fresh SM refuses work")
	}
	for i := 0; i < 4; i++ {
		if err := s.AssignCTA(i); err != nil {
			t.Fatal(err)
		}
	}
	if s.freeWarpSlots != 32-16 {
		t.Errorf("free warp slots = %d, want 16", s.freeWarpSlots)
	}
	if s.BusyCTAs() != 4 || s.Idle() {
		t.Error("occupancy accounting wrong")
	}
	// Run to completion; slots must come back.
	for i := 0; i < 20000 && !s.Idle(); i++ {
		s.Cycle()
	}
	if !s.Idle() || s.freeWarpSlots != 32 || s.freeTBSlots != 16 {
		t.Errorf("resources not released: warps %d, tbs %d", s.freeWarpSlots, s.freeTBSlots)
	}
	if s.Stats().CTAsRetired != 4 {
		t.Errorf("retired = %d", s.Stats().CTAsRetired)
	}
}

func TestRejectOverAssignment(t *testing.T) {
	s := testSM(t, tinyKernel, 64, 1024, nil, core.Config{Policy: core.PolicyBaseline})
	if err := s.AssignCTA(0); err != nil {
		t.Fatal(err)
	}
	// 1024 threads = 32 warps: the SM is full.
	if s.CanAcceptCTA() {
		t.Error("full SM claims to accept more work")
	}
	if err := s.AssignCTA(1); err == nil {
		t.Error("over-assignment accepted")
	}
}

func TestFullMask(t *testing.T) {
	if m := fullMask(64, 0); m != 0xFFFFFFFF {
		t.Errorf("full warp mask = %#x", m)
	}
	if m := fullMask(48, 1); m != 0x0000FFFF {
		t.Errorf("partial warp mask = %#x, want lower 16 lanes", m)
	}
	if m := fullMask(32, 1); m != 0 {
		t.Errorf("out-of-range warp mask = %#x, want 0", m)
	}
}

func TestSIMTStack(t *testing.T) {
	w := &warpCtx{}
	w.stack = append(w.stack, simtEntry{pc: 0, rpc: -1, mask: 0xFF})

	// Reconverged frame pops.
	w.stack = append(w.stack, simtEntry{pc: 10, rpc: 10, mask: 0xF0})
	top := w.top()
	if top == nil || top.mask != 0xFF {
		t.Fatalf("reconverged frame not popped: %+v", top)
	}

	// Empty-mask frame pops.
	w.stack = append(w.stack, simtEntry{pc: 5, rpc: 9, mask: 0})
	if top := w.top(); top == nil || top.pc != 0 {
		t.Fatalf("empty frame not popped: %+v", top)
	}

	// exitLanes drains every frame.
	w.stack = append(w.stack, simtEntry{pc: 5, rpc: 9, mask: 0x0F})
	w.exitLanes(0xFF)
	if w.top() != nil {
		t.Error("exitLanes left live frames")
	}
}

func TestPredBits(t *testing.T) {
	w := &warpCtx{}
	w.preds[2] = 0x0000FFFF
	if w.predBits(2, false) != 0x0000FFFF {
		t.Error("positive guard wrong")
	}
	if w.predBits(2, true) != 0xFFFF0000 {
		t.Error("negated guard wrong")
	}
}

func TestSpecialValues(t *testing.T) {
	s := testSM(t, tinyKernel, 4, 128, nil, core.Config{Policy: core.PolicyBaseline})
	if err := s.AssignCTA(3); err != nil {
		t.Fatal(err)
	}
	var w *warpCtx
	for _, ww := range s.warps {
		if ww.ctaID == 3 && ww.warpInCTA == 1 {
			w = ww
		}
	}
	if w == nil {
		t.Fatal("warp 1 of CTA 3 not found")
	}
	tid := s.specialValue(w, isa.SpecTidX)
	if tid[0] != 32 || tid[31] != 63 {
		t.Errorf("tid lanes = %d..%d, want 32..63", tid[0], tid[31])
	}
	if v := s.specialValue(w, isa.SpecCtaidX); v[0] != 3 {
		t.Errorf("ctaid = %d", v[0])
	}
	if v := s.specialValue(w, isa.SpecNtidX); v[0] != 128 {
		t.Errorf("ntid = %d", v[0])
	}
	if v := s.specialValue(w, isa.SpecNctaidX); v[0] != 4 {
		t.Errorf("nctaid = %d", v[0])
	}
	if v := s.specialValue(w, isa.SpecLaneID); v[5] != 5 {
		t.Errorf("laneid = %d", v[5])
	}
	if v := s.specialValue(w, isa.SpecWarpID); v[0] != 1 {
		t.Errorf("warpid = %d", v[0])
	}
}

func TestInflightDeliveries(t *testing.T) {
	in := &isa.Instruction{Op: isa.OpAdd, HasDst: true, Dst: 3, PredReg: isa.PredTrue,
		Srcs: [3]isa.Operand{isa.Reg(1), isa.Reg(1), isa.Reg(2)}, NSrc: 3}
	f := &inflight{in: in, outstanding: 2}

	var v1 coreValue
	v1[0] = 11
	f.pushDelivery(f.slotMask(1), v1)
	var v2 coreValue
	v2[0] = 22
	f.pushDelivery(f.slotMask(2), v2)

	if f.collected() {
		t.Fatal("collected before consuming deliveries")
	}
	f.consumeDelivery() // one per cycle: single port
	if f.collected() {
		t.Fatal("collected after one of two deliveries")
	}
	f.consumeDelivery()
	if !f.collected() {
		t.Fatal("not collected after all deliveries")
	}
	// r1 feeds slots 0 and 1; r2 feeds slot 2.
	if f.srcVals[0][0] != 11 || f.srcVals[1][0] != 11 || f.srcVals[2][0] != 22 {
		t.Errorf("operand slots = %d/%d/%d", f.srcVals[0][0], f.srcVals[1][0], f.srcVals[2][0])
	}
}

func TestEffectiveValuePrecedence(t *testing.T) {
	s := testSM(t, tinyKernel, 1, 32, nil, core.Config{IW: 3, Policy: core.PolicyWriteBack})
	if err := s.AssignCTA(0); err != nil {
		t.Fatal(err)
	}
	var rf coreValue
	rf[0] = 7
	s.rf.Poke(0, 5, rf)
	if got := s.effectiveValue(0, 5); got[0] != 7 {
		t.Errorf("RF fallback = %d", got[0])
	}
	// A window copy shadows the RF copy.
	in := &isa.Instruction{Op: isa.OpMov, HasDst: true, Dst: 5, PredReg: isa.PredTrue}
	plan := s.engines[0].Advance(in)
	var boc coreValue
	boc[0] = 9
	s.engines[0].Writeback(5, boc, isa.WBBoth, plan.Seq)
	if got := s.effectiveValue(0, 5); got[0] != 9 {
		t.Errorf("window copy not preferred: %d", got[0])
	}
	if got := s.effectiveValue(0, isa.RegZero); got[0] != 0 {
		t.Error("RZ must read as zero")
	}
}

func TestRemoveCollector(t *testing.T) {
	w := &warpCtx{}
	a := &inflight{}
	b := &inflight{}
	w.collectors = []*inflight{a, b}
	removeCollector(w, a)
	if len(w.collectors) != 1 || w.collectors[0] != b {
		t.Errorf("removeCollector wrong: %v", w.collectors)
	}
	removeCollector(w, a) // absent: no-op
	if len(w.collectors) != 1 {
		t.Error("removing absent inflight changed the list")
	}
}
