package sm

import (
	"fmt"
	"sort"

	"bow/internal/core"
	"bow/internal/exec"
	"bow/internal/isa"
	"bow/internal/mem"
	"bow/internal/trace"
)

// coreValue aliases the warp-wide value type for brevity.
type coreValue = core.Value

// dispatch sends collected instructions to the functional units,
// oldest-issued first so no collector starves when many warps become
// ready in the same cycle. The ready list is kept in dispatch order
// (issueCycle, slot, seq) by markReady, so this is a single walk — no
// per-cycle scan over every warp slot and no sort.
//
//bow:hotpath
func (s *SM) dispatch() {
	for f := s.readyHead; f != nil; {
		next := f.rnext
		if !s.pipes.TryIssue(f.in.Class()) {
			s.st.FUStalls++
			f = next
			continue
		}
		f.dispatchCycle = s.cycle
		s.readyRemove(f)
		removeCollector(f.warp, f)
		s.busyCollectors--
		if err := s.execute(f); err != nil {
			s.execFault(err, f)
		}
		f = next
	}
}

// execFault aborts the simulation on a functional fault: it means a
// kernel or pipeline bug, never a recoverable condition. Out of line so
// the message formatting stays off the dispatch hot path.
func (s *SM) execFault(err error, f *inflight) {
	panic(fmt.Sprintf("sm %d cycle %d: %v (inst %s)", s.id, s.cycle, err, f.in))
}

// dispatchRef is the reference-loop dispatch: scan every collector of
// every warp slot, mark the newly collected ready, and sort the ready
// set. sort.SliceStable on (issueCycle, slot) over the scan order
// yields exactly the (issueCycle, slot, seq) order the ready list
// maintains incrementally — same-key instructions are same-warp and
// appear in issue order.
func (s *SM) dispatchRef() {
	ready := s.refScratch[:0]
	for _, w := range s.warps {
		for _, f := range w.collectors {
			if !f.ready {
				if !f.collected() {
					continue
				}
				f.ready = true
				f.collectCycle = s.cycle
				s.sb.ReleaseReads(w.slot, f.in)
			}
			ready = append(ready, f)
		}
	}
	sort.SliceStable(ready, func(i, j int) bool {
		if ready[i].issueCycle != ready[j].issueCycle {
			return ready[i].issueCycle < ready[j].issueCycle
		}
		return ready[i].warp.slot < ready[j].warp.slot
	})
	for _, f := range ready {
		if !s.pipes.TryIssue(f.in.Class()) {
			s.st.FUStalls++
			continue
		}
		f.dispatchCycle = s.cycle
		removeCollector(f.warp, f)
		s.busyCollectors--
		if err := s.execute(f); err != nil {
			s.execFault(err, f)
		}
	}
	for i := range ready {
		ready[i] = nil
	}
	s.refScratch = ready[:0]
}

// removeCollector frees the operand-collector slot of a dispatched
// instruction, preserving issue order of the rest. The vacated tail
// slot is nilled so the record is freelist-eligible the moment it
// completes — a stale tail pointer would keep it (and its operand
// values) live.
func removeCollector(w *warpCtx, f *inflight) {
	for i, x := range w.collectors {
		if x == f {
			last := len(w.collectors) - 1
			copy(w.collectors[i:], w.collectors[i+1:])
			w.collectors[last] = nil
			w.collectors = w.collectors[:last]
			return
		}
	}
}

// execute performs the functional operation and schedules completion.
func (s *SM) execute(f *inflight) error {
	in := f.in
	w := f.warp

	// Apply the guard predicate.
	mask := f.execMask
	if in.PredReg != isa.PredTrue {
		mask &= w.predBits(in.PredReg, in.PredNeg)
	}

	switch in.Op {
	case isa.OpLd, isa.OpSt, isa.OpAtm:
		return s.executeMem(f, mask)
	case isa.OpBra:
		ev := s.instEvent(evBranch, f)
		ev.mask = mask
		s.schedule(s.pipes.Latency(isa.FUCtrl), ev)
		return nil
	case isa.OpExit, isa.OpRet:
		ev := s.instEvent(evExitRet, f)
		ev.mask = mask
		s.schedule(s.pipes.Latency(isa.FUCtrl), ev)
		return nil
	case isa.OpBar:
		s.schedule(s.pipes.Latency(isa.FUCtrl), s.instEvent(evBar, f))
		return nil
	case isa.OpSSY, isa.OpSync, isa.OpNop:
		s.schedule(s.pipes.Latency(isa.FUCtrl), s.instEvent(evNoDest, f))
		return nil
	}

	// ALU / FPU / SFU. The result is evaluated straight into the
	// completion record. Eval writes only the active lanes; any stale
	// lanes from a recycled record are dropped by the mask-gated merge
	// in writeback.
	ev := s.instEvent(evALU, f)
	predOut, err := exec.Eval(in, &f.srcVals, f.predSrc, mask, &ev.result)
	if err != nil {
		s.wheel.release(ev)
		return err
	}
	ev.mask = mask
	ev.predOut = predOut
	s.schedule(s.pipes.Latency(in.Class()), ev)
	return nil
}

// resolveBranch applies a branch at completion time: control flow is
// resolved at execute latency and the warp unstalls.
func (s *SM) resolveBranch(f *inflight, mask uint32) {
	in := f.in
	w := f.warp
	t := w.top()
	if t != nil {
		taken := mask
		notTaken := f.execMask &^ taken
		switch {
		case taken == 0:
			// Fall through: pc already advanced.
		case notTaken == 0:
			t.pc = in.Target
		default:
			// Divergence: continue on the taken path; the not-taken
			// path and the reconvergence continuation are stacked.
			rpc, ok := s.kernel.Reconv[in.PC]
			if !ok {
				rpc = len(s.kernel.Program.Code)
			}
			fall := t.pc // already advanced past the branch
			t.pc = rpc
			w.stack = append(w.stack,
				simtEntry{pc: fall, rpc: rpc, mask: notTaken},
				simtEntry{pc: in.Target, rpc: rpc, mask: taken},
			)
			s.st.Divergences++
		}
	}
	w.stalled = false
	s.completeNoDest(f)
}

// executeMem performs address generation, coalescing, functional memory
// access, and schedules the (possibly long-latency) completion.
func (s *SM) executeMem(f *inflight, mask uint32) error {
	in := f.in
	w := f.warp

	if mask == 0 {
		ev := s.instEvent(evMem, f)
		if _, ok := in.DstReg(); ok {
			// Predicated-off load: destination unchanged; still must
			// release the scoreboard.
			ev.isLoad = true
			ev.result = f.oldDst
			ev.mask = 0
		}
		s.schedule(1, ev)
		return nil
	}

	// Per-lane byte addresses.
	var addrs [isa.WarpSize]uint32
	for l := 0; l < isa.WarpSize; l++ {
		if mask&(1<<uint(l)) != 0 {
			addrs[l] = f.srcVals[0][l] + in.ImmOff
		}
	}

	latency := 0
	countTxn := func(n int) {
		s.st.MemTransactions += int64(n)
	}

	var result coreValue
	var ferr error
	switch in.Space {
	case isa.SpaceGlobal:
		segs := mem.CoalesceInto(s.segScratch[:0], addrs[:], mask, s.gcfg.L1LineBytes)
		s.segScratch = segs
		countTxn(len(segs))
		for i, seg := range segs {
			var l int
			if in.Op == isa.OpSt {
				l = s.hier.StoreLatency(seg)
			} else {
				l = s.hier.LoadLatency(seg)
			}
			if l+i > latency { // serialization: one transaction per cycle
				latency = l + i
			}
		}
		ferr = s.accessGlobal(f, mask, addrs[:], &result)
	case isa.SpaceShared:
		cta := s.ctas[w.ctaID]
		latency = s.gcfg.L1HitCycles // scratchpad ~ L1 latency
		countTxn(1)
		ferr = s.accessShared(cta.shared, f, mask, addrs[:], &result)
	case isa.SpaceLocal:
		// Local memory: per-thread backing in global space.
		base := func(l int) uint32 {
			gtid := uint32(w.ctaID)*uint32(s.kernel.BlockDim) + uint32(w.warpInCTA*isa.WarpSize+l)
			return 0x8000_0000 + gtid*0x1_0000
		}
		var laddrs [isa.WarpSize]uint32
		for l := range laddrs {
			if mask&(1<<uint(l)) != 0 {
				laddrs[l] = base(l) + addrs[l]
			}
		}
		segs := mem.CoalesceInto(s.segScratch[:0], laddrs[:], mask, s.gcfg.L1LineBytes)
		s.segScratch = segs
		countTxn(len(segs))
		for i, seg := range segs {
			l := s.hier.LoadLatency(seg)
			if l+i > latency {
				latency = l + i
			}
		}
		ferr = s.accessGlobal(f, mask, laddrs[:], &result)
	case isa.SpaceParam:
		latency = 8 // constant cache
		countTxn(1)
		for l := 0; l < isa.WarpSize; l++ {
			if mask&(1<<uint(l)) == 0 {
				continue
			}
			idx := int(addrs[l] / 4)
			if idx < 0 || idx >= len(s.kernel.Params) {
				return fmt.Errorf("param read out of range: offset 0x%x", addrs[l])
			}
			result[l] = s.kernel.Params[idx]
		}
	default:
		return fmt.Errorf("unsupported memory space %v", in.Space)
	}
	if ferr != nil {
		return ferr
	}

	ev := s.instEvent(evMem, f)
	ev.isLoad = in.Op == isa.OpLd || in.Op == isa.OpAtm
	ev.result = result
	ev.mask = mask
	s.schedule(latency, ev)
	return nil
}

// accessGlobal performs the functional global-memory operation.
func (s *SM) accessGlobal(f *inflight, mask uint32, addrs []uint32, result *coreValue) error {
	in := f.in
	for l := 0; l < isa.WarpSize; l++ {
		if mask&(1<<uint(l)) == 0 {
			continue
		}
		switch in.Op {
		case isa.OpLd:
			v, err := s.global.Read32(addrs[l])
			if err != nil {
				return err
			}
			result[l] = v
		case isa.OpSt:
			if err := s.global.Write32(addrs[l], f.srcVals[1][l]); err != nil {
				return err
			}
		case isa.OpAtm:
			old, err := s.global.AtomicAdd(addrs[l], f.srcVals[1][l])
			if err != nil {
				return err
			}
			result[l] = old
		}
	}
	return nil
}

// accessShared performs the functional scratchpad operation.
func (s *SM) accessShared(sh *mem.SharedMemory, f *inflight, mask uint32, addrs []uint32, result *coreValue) error {
	in := f.in
	for l := 0; l < isa.WarpSize; l++ {
		if mask&(1<<uint(l)) == 0 {
			continue
		}
		switch in.Op {
		case isa.OpLd:
			v, err := sh.Read32(addrs[l])
			if err != nil {
				return err
			}
			result[l] = v
		case isa.OpSt:
			if err := sh.Write32(addrs[l], f.srcVals[1][l]); err != nil {
				return err
			}
		case isa.OpAtm:
			old, err := sh.AtomicAdd(addrs[l], f.srcVals[1][l])
			if err != nil {
				return err
			}
			result[l] = old
		}
	}
	return nil
}

// writeback delivers a destination-register result: the architectural
// value is merged lane-wise, handed to the window engine (which decides
// BOC/RF placement per policy and hint), and the scoreboard releases the
// dependents.
func (s *SM) writeback(f *inflight, result coreValue, mask uint32) {
	in := f.in
	w := f.warp

	if d, ok := in.DstReg(); ok {
		merged := exec.Merge(f.oldDst, result, mask)
		eng := s.engines[w.slot]
		buffered := eng.Writeback(d, merged, in.WBHint, f.seq)
		if s.Tracer != nil && buffered {
			s.Tracer.Emit(s.cycle, s.id, w.slot, trace.EvBOCWrite, int32(eng.Occupancy()))
		}
		s.st.WritebacksByHint[in.WBHint]++
	}
	s.sb.ReleaseWrite(w.slot, in)
	s.complete(f)
}

// completeNoDest finishes an instruction without a register result.
func (s *SM) completeNoDest(f *inflight) {
	s.sb.ReleaseWrite(f.warp.slot, f.in) // releases dst-pred if any
	s.complete(f)
}

// complete records end-of-life statistics for the instruction and
// recycles its record. The operand-collection residency is
// issue-to-collected (the paper's OC stage: waiting on bank reads
// through the single collector port); waiting for a free functional
// unit afterwards is not collection time.
func (s *SM) complete(f *inflight) {
	s.st.Executed++
	total := s.cycle - f.issueCycle
	oc := f.collectCycle - f.issueCycle
	if total < 1 {
		total = 1
	}
	if oc < 0 {
		oc = 0
	}
	s.st.TotalInstCycles += total
	s.st.OCStageCycles += oc
	if f.in.IsMem() {
		s.st.MemInsts++
		s.st.MemTotalCycles += total
		s.st.MemOCCycles += oc
	} else {
		s.st.NonMemInsts++
		s.st.NonMemTotalCycles += total
		s.st.NonMemOCCycles += oc
	}
	s.releaseInflight(f)
}
