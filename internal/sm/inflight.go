package sm

import (
	"bow/internal/core"
	"bow/internal/isa"
)

// inflight is one warp instruction traversing the pipeline from issue to
// completion. Records are free-listed by the SM (allocInflight /
// releaseInflight), so steady-state issue allocates nothing.
//
//bow:state
type inflight struct {
	in   *isa.Instruction
	warp *warpCtx
	seq  int64 // window sequence number (engine Advance)

	execMask uint32 // SIMT frame mask at issue (guard applied at dispatch)

	issueCycle    int64
	collectCycle  int64 // all operands captured
	dispatchCycle int64

	// Operand values in operand-slot order.
	srcVals [isa.MaxSrcOperands]core.Value
	// oldDst is the destination's value at issue time, the merge base
	// for predicated/divergent partial writes. It is final by issue
	// time: the scoreboard's WAW check admits no other in-flight writer.
	oldDst core.Value
	// predSrc holds the per-lane bits of a predicate source (sel).
	predSrc uint32

	// outstanding counts register source operands not yet captured.
	outstanding int
	// deliv buffers RF reads that arrived but haven't passed through
	// the collector's single port yet (one consumed per cycle). At most
	// one delivery per distinct source register, so a fixed ring
	// suffices.
	deliv     [isa.MaxSrcOperands]delivery
	delivHead uint8
	delivLen  uint8

	ready bool // operands complete, awaiting a functional-unit slot

	// rnext/rprev link the SM's dispatch-ordered ready list.
	rnext *inflight
	rprev *inflight //bow:derived -- back link; LoadState rebuilds it from the serialized forward walk
}

// delivery is one register value awaiting the collector port, with the
// operand slots it feeds as a bitmask.
//
//bow:state
type delivery struct {
	slots uint8
	val   core.Value
}

// pushDelivery buffers an arrived register value.
func (f *inflight) pushDelivery(slots uint8, val core.Value) {
	if int(f.delivLen) == len(f.deliv) {
		panic("sm: delivery ring overflow")
	}
	f.deliv[(f.delivHead+f.delivLen)%uint8(len(f.deliv))] = delivery{slots: slots, val: val}
	f.delivLen++
}

// consumeDelivery moves one buffered RF delivery into the operand slots
// (the collector is single-ported: one operand per cycle).
func (f *inflight) consumeDelivery() {
	if f.delivLen == 0 {
		return
	}
	d := f.deliv[f.delivHead]
	f.delivHead = (f.delivHead + 1) % uint8(len(f.deliv))
	f.delivLen--
	for i := 0; i < f.in.NSrc; i++ {
		if d.slots&(1<<uint(i)) != 0 {
			f.srcVals[i] = d.val
		}
	}
	f.outstanding--
}

// fillReg records a forwarded (bypassed) register value directly into
// its operand slots — forwarding bypasses the collector port.
func (f *inflight) fillReg(reg uint8, val core.Value) {
	for i := 0; i < f.in.NSrc; i++ {
		o := f.in.Srcs[i]
		if o.Kind == isa.OpdReg && o.Reg == reg {
			f.srcVals[i] = val
		}
	}
}

// slotMask returns the operand slots reading register reg as a bitmask.
func (f *inflight) slotMask(reg uint8) uint8 {
	var m uint8
	for i := 0; i < f.in.NSrc; i++ {
		o := f.in.Srcs[i]
		if o.Kind == isa.OpdReg && o.Reg == reg {
			m |= 1 << uint(i)
		}
	}
	return m
}

// collected reports whether every operand has been captured.
func (f *inflight) collected() bool {
	return f.outstanding == 0 && f.delivLen == 0
}

// DeliverRead implements regfile.ReadSink: a completed bank read
// arrives at this collector, serves every later instruction whose
// operand merged into this fill (request merging in the BOC), and
// fills the window engine's pending entry. Replaces the seed's
// per-read closure. All deliveries copy *val before FillFromRF runs:
// the engine fill can evict window entries, and an eviction's
// functional write may alias the storage val points into.
func (f *inflight) DeliverRead(reg uint8, val *core.Value) {
	w := f.warp
	s := w.sm
	f.pushDelivery(f.slotMask(reg), *val)
	if len(w.fillWaiters) > 0 {
		kept := w.fillWaiters[:0]
		for _, fw := range w.fillWaiters {
			if fw.reg == reg {
				fw.f.pushDelivery(fw.f.slotMask(reg), *val)
			} else {
				kept = append(kept, fw)
			}
		}
		for i := len(kept); i < len(w.fillWaiters); i++ {
			w.fillWaiters[i] = fillWaiter{}
		}
		w.fillWaiters = kept
	}
	s.engines[w.slot].FillFromRF(reg, *val, f.seq)
}

// allocInflight returns a reset record from the SM's free list,
// refilling it a slab at a time — an inflight is ~1 KiB, and warming up
// one object per issue dominated short runs' allocation profile.
func (s *SM) allocInflight() *inflight {
	n := len(s.freeInflights)
	if n == 0 {
		slab := make([]inflight, 16)
		for i := range slab[1:] {
			s.freeInflights = append(s.freeInflights, &slab[1+i])
		}
		return &slab[0]
	}
	f := s.freeInflights[n-1]
	s.freeInflights[n-1] = nil
	s.freeInflights = s.freeInflights[:n-1]
	return f
}

// releaseInflight recycles a completed record. Safe at complete():
// the instruction has left the collectors and ready list, all its
// deliveries and events have fired, and no fill waiter references it.
//
// Only bookkeeping fields are reset; the large value payloads (srcVals,
// oldDst, deliv values) are left stale. That is safe because every
// consumer reads them only after a fresh write on the reused record:
// srcVals slots are filled per NSrc before Eval, oldDst is captured at
// issue, and deliv entries are written by pushDelivery before
// consumeDelivery can see them (delivHead/delivLen restart at zero).
// Skipping the ~1 KiB memclr per retired instruction is one of the
// loop's larger wins.
func (s *SM) releaseInflight(f *inflight) {
	f.in = nil
	f.warp = nil
	f.seq = 0
	f.execMask = 0
	f.issueCycle = 0
	f.collectCycle = 0
	f.dispatchCycle = 0
	f.predSrc = 0
	f.outstanding = 0
	f.delivHead = 0
	f.delivLen = 0
	f.ready = false
	f.rnext = nil
	f.rprev = nil
	// deliv slot bitmasks are cleared so a stale slots byte can never be
	// mistaken for a live one (defensive; delivLen==0 already guards).
	for i := range f.deliv {
		f.deliv[i].slots = 0
	}
	s.freeInflights = append(s.freeInflights, f)
}
