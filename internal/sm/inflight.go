package sm

import (
	"bow/internal/core"
	"bow/internal/isa"
)

// inflight is one warp instruction traversing the pipeline from issue to
// completion.
type inflight struct {
	in   *isa.Instruction
	warp *warpCtx
	seq  int64 // window sequence number (engine Advance)

	execMask uint32 // SIMT frame mask at issue (guard applied at dispatch)

	issueCycle    int64
	collectCycle  int64 // all operands captured
	dispatchCycle int64

	// Operand values in operand-slot order.
	srcVals [isa.MaxSrcOperands]core.Value
	// oldDst is the destination's value at issue time, the merge base
	// for predicated/divergent partial writes. It is final by issue
	// time: the scoreboard's WAW check admits no other in-flight writer.
	oldDst core.Value
	// predSrc holds the per-lane bits of a predicate source (sel).
	predSrc uint32

	// outstanding counts register source operands not yet captured.
	outstanding int
	// deliveries buffers RF reads that arrived but haven't passed through
	// the collector's single port yet (one consumed per cycle).
	deliveries []delivery

	ready bool // operands complete, awaiting a functional-unit slot
}

type delivery struct {
	slots []int // operand slots this register feeds
	val   core.Value
}

// consumeDelivery moves one buffered RF delivery into the operand slots
// (the collector is single-ported: one operand per cycle).
func (f *inflight) consumeDelivery() {
	if len(f.deliveries) == 0 {
		return
	}
	d := f.deliveries[0]
	f.deliveries = f.deliveries[1:]
	for _, s := range d.slots {
		f.srcVals[s] = d.val
	}
	f.outstanding--
}

// fillReg records a forwarded (bypassed) register value directly into
// its operand slots — forwarding bypasses the collector port.
func (f *inflight) fillReg(reg uint8, val core.Value) {
	for i := 0; i < f.in.NSrc; i++ {
		o := f.in.Srcs[i]
		if o.Kind == isa.OpdReg && o.Reg == reg {
			f.srcVals[i] = val
		}
	}
}

// slotsOf returns the operand slots reading register reg.
func (f *inflight) slotsOf(reg uint8) []int {
	var out []int
	for i := 0; i < f.in.NSrc; i++ {
		o := f.in.Srcs[i]
		if o.Kind == isa.OpdReg && o.Reg == reg {
			out = append(out, i)
		}
	}
	return out
}

// collected reports whether every operand has been captured.
func (f *inflight) collected() bool {
	return f.outstanding == 0 && len(f.deliveries) == 0
}
