package sm

import (
	"bow/internal/stats"
)

// RunStats aggregates the per-SM measurements the experiments consume.
//
//bow:state
type RunStats struct {
	Cycles   int64
	Issued   int64
	Executed int64

	CTAsRetired int64

	ScoreboardStalls int64
	FUStalls         int64
	Divergences      int64

	MemTransactions int64

	// Operand-collection residency (Figs. 4 and 12).
	TotalInstCycles   int64
	OCStageCycles     int64
	MemInsts          int64
	MemTotalCycles    int64
	MemOCCycles       int64
	NonMemInsts       int64
	NonMemTotalCycles int64
	NonMemOCCycles    int64

	// WritebacksByHint counts dynamic destination writes by compiler
	// class (Fig. 7). Indexed by isa.WritebackHint.
	WritebacksByHint [3]int64

	// OccupancyBOC samples live BOC entries per active warp-cycle
	// (Fig. 9). OccupancyOCU is reserved for baseline collector
	// occupancy. SrcOperands histograms distinct register source operands
	// per instruction (Fig. 8).
	OccupancyBOC *stats.Histogram
	OccupancyOCU *stats.Histogram
	SrcOperands  *stats.Histogram
}

// IPC returns executed warp instructions per cycle.
func (r *RunStats) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Executed) / float64(r.Cycles)
}

// OCShare returns the fraction of instruction lifetime spent in the
// operand-collection stage.
func (r *RunStats) OCShare() float64 {
	if r.TotalInstCycles == 0 {
		return 0
	}
	return float64(r.OCStageCycles) / float64(r.TotalInstCycles)
}

// MemOCShare and NonMemOCShare split OCShare by instruction kind
// (Fig. 4).
func (r *RunStats) MemOCShare() float64 {
	if r.MemTotalCycles == 0 {
		return 0
	}
	return float64(r.MemOCCycles) / float64(r.MemTotalCycles)
}

// NonMemOCShare is the OC-stage share for non-memory instructions.
func (r *RunStats) NonMemOCShare() float64 {
	if r.NonMemTotalCycles == 0 {
		return 0
	}
	return float64(r.NonMemOCCycles) / float64(r.NonMemTotalCycles)
}

// Merge accumulates o into r (multi-SM aggregation).
func (r *RunStats) Merge(o *RunStats) {
	r.Cycles = maxI64(r.Cycles, o.Cycles)
	r.Issued += o.Issued
	r.Executed += o.Executed
	r.CTAsRetired += o.CTAsRetired
	r.ScoreboardStalls += o.ScoreboardStalls
	r.FUStalls += o.FUStalls
	r.Divergences += o.Divergences
	r.MemTransactions += o.MemTransactions
	r.TotalInstCycles += o.TotalInstCycles
	r.OCStageCycles += o.OCStageCycles
	r.MemInsts += o.MemInsts
	r.MemTotalCycles += o.MemTotalCycles
	r.MemOCCycles += o.MemOCCycles
	r.NonMemInsts += o.NonMemInsts
	r.NonMemTotalCycles += o.NonMemTotalCycles
	r.NonMemOCCycles += o.NonMemOCCycles
	for i := range r.WritebacksByHint {
		r.WritebacksByHint[i] += o.WritebacksByHint[i]
	}
	if r.OccupancyBOC == nil {
		r.OccupancyBOC = stats.NewHistogram()
	}
	if o.OccupancyBOC != nil {
		r.OccupancyBOC.Merge(o.OccupancyBOC)
	}
	if r.OccupancyOCU == nil {
		r.OccupancyOCU = stats.NewHistogram()
	}
	if o.OccupancyOCU != nil {
		r.OccupancyOCU.Merge(o.OccupancyOCU)
	}
	if r.SrcOperands == nil {
		r.SrcOperands = stats.NewHistogram()
	}
	if o.SrcOperands != nil {
		r.SrcOperands.Merge(o.SrcOperands)
	}
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
