package sm

import (
	"bow/internal/core"
	"bow/internal/isa"
	"bow/internal/trace"
)

// evKind discriminates the typed completion records the cycle loop
// schedules. The seed implementation scheduled closures on a
// map[int64][]func() calendar; each kind below corresponds to one of
// those closure shapes, so event application is a switch dispatch with
// no per-instruction allocation.
type evKind uint8

const (
	// evALU completes an ALU/FPU/SFU instruction: merge the destination
	// predicate (if any) and write back the result.
	evALU evKind = iota
	// evMem completes a memory instruction: write back the loaded value
	// (isLoad) or just release the scoreboard (stores, fences).
	evMem
	// evBranch resolves a branch: reconvergence-stack update, unstall.
	evBranch
	// evExitRet terminates lanes and possibly the warp.
	evExitRet
	// evBar completes a bar.sync and arrives at the CTA barrier.
	evBar
	// evNoDest completes an instruction with no register result.
	evNoDest
	// evDelivery delivers a forwarded operand through the collector port
	// after the RF pipeline delay (ForwardThroughPort / RFC mode only).
	evDelivery
	// evWarpExit retries warpExited once in-flight work has drained.
	evWarpExit
)

// event is one scheduled completion. Records are free-listed by the
// calendar, so steady-state cycling allocates nothing.
//
//bow:state
type event struct {
	next    *event
	f       *inflight
	w       *warpCtx // evWarpExit only
	kind    evKind
	isLoad  bool  // evMem
	reg     uint8 // evDelivery
	mask    uint32
	predOut uint32     // evALU
	result  core.Value // evALU / evMem result, evDelivery value
}

// eventList is a FIFO of events (fired in scheduling order, matching
// the seed calendar's append semantics).
//
//bow:state
type eventList struct {
	head *event
	tail *event //bow:derived -- FIFO tail; LoadState re-pushes events in firing order, which rebuilds it
}

func (l *eventList) push(ev *event) {
	ev.next = nil
	if l.tail == nil {
		l.head = ev
	} else {
		l.tail.next = ev
	}
	l.tail = ev
}

// take detaches and returns the whole list.
func (l *eventList) take() *event {
	h := l.head
	l.head, l.tail = nil, nil
	return h
}

// farEvent parks an event scheduled beyond the wheel horizon.
//
//bow:state
type farEvent struct {
	at int64
	ev *event
}

// eventWheel is a fixed-size timing-wheel calendar: slot (cycle &
// mask) holds the events due at that cycle. All pipeline latencies are
// small and bounded (bank pipeline, FU latencies, memory hierarchy +
// coalescing serialization), so the wheel is sized at construction to
// cover them all; anything farther out — possible only with exotic
// configs — parks in the far list and migrates into the wheel as its
// cycle approaches.
//
//bow:state
type eventWheel struct {
	slots []eventList
	mask  int64  //bow:resetskip -- wheel geometry, fixed at construction from the configured latency span
	free  *event //bow:derived -- recycled-event pool; dead records by definition, rebuilt empty on restore
	far   []farEvent
}

func newEventWheel(minSpan int) *eventWheel {
	size := 64
	for size <= minSpan {
		size *= 2
	}
	return &eventWheel{slots: make([]eventList, size), mask: int64(size - 1)}
}

// alloc returns a recycled event record with every field except result
// reset. result is deliberately left stale: each scheduling site either
// assigns it whole (evMem, evDelivery) or writes its active lanes and
// completes through a mask-gated merge (evALU), so stale lanes are
// never observed, and skipping the 128-byte clear per event matters in
// the hot loop.
//
//bow:hotpath
func (w *eventWheel) alloc() *event {
	if ev := w.free; ev != nil {
		w.free = ev.next
		ev.next = nil
		return ev
	}
	// Refill a slab at a time; single-record warm-up showed up in short
	// runs' allocation profiles.
	//bowvet:ignore hotpathalloc -- amortized slab refill; steady state serves from the free list
	slab := make([]event, 16)
	for i := range slab[1:] {
		slab[1+i].next = w.free
		w.free = &slab[1+i]
	}
	return &slab[0]
}

// release resets the record's bookkeeping fields (not result — see
// alloc) and returns it to the free list.
//
//bow:hotpath
func (w *eventWheel) release(ev *event) {
	ev.f = nil
	ev.w = nil
	ev.kind = 0
	ev.isLoad = false
	ev.reg = 0
	ev.mask = 0
	ev.predOut = 0
	ev.next = w.free
	w.free = ev
}

// reset drains every pending event — wheel slots and the far list —
// back onto the free list, restoring the calendar to its
// freshly-constructed (empty, cycle-zero-consistent) state. The free
// list itself is kept: recycling a retired SM's calendar keeps its
// warmed-up event records, which is the point. Pending events can
// exist only when the previous run ended early (cycle-limit error);
// a completed kernel leaves the wheel empty.
func (w *eventWheel) reset() {
	for i := range w.slots {
		for ev := w.slots[i].take(); ev != nil; {
			next := ev.next
			w.release(ev)
			ev = next
		}
	}
	for i, fe := range w.far {
		w.release(fe.ev)
		w.far[i] = farEvent{}
	}
	w.far = w.far[:0]
}

// schedule files ev to fire at absolute cycle at (> now).
//
//bow:hotpath
func (w *eventWheel) schedule(now, at int64, ev *event) {
	if at-now <= w.mask {
		w.slots[at&w.mask].push(ev)
		return
	}
	w.far = append(w.far, farEvent{at: at, ev: ev})
}

// due detaches the event chain firing at cycle now.
//
//bow:hotpath
func (w *eventWheel) due(now int64) *event {
	if len(w.far) > 0 {
		// Migrate far events whose cycle now fits the wheel horizon,
		// preserving scheduling order.
		kept := w.far[:0]
		for _, fe := range w.far {
			if fe.at-now <= w.mask {
				w.slots[fe.at&w.mask].push(fe.ev)
			} else {
				kept = append(kept, fe)
			}
		}
		for i := len(kept); i < len(w.far); i++ {
			w.far[i] = farEvent{}
		}
		w.far = kept
	}
	return w.slots[now&w.mask].take()
}

// schedule files ev delay cycles ahead (min 1), on the wheel or — in
// reference-loop mode — on the seed-style map calendar.
//
//bow:hotpath
func (s *SM) schedule(delay int, ev *event) {
	if delay < 1 {
		delay = 1
	}
	at := s.cycle + int64(delay)
	if s.ref {
		s.refEvents[at] = append(s.refEvents[at], ev)
		return
	}
	s.wheel.schedule(s.cycle, at, ev)
}

// runEvents fires every event due this cycle, in scheduling order, and
// recycles the records.
//
//bow:hotpath
func (s *SM) runEvents() {
	if s.ref {
		evs, ok := s.refEvents[s.cycle]
		if !ok {
			return
		}
		delete(s.refEvents, s.cycle)
		for _, ev := range evs {
			if s.Tracer != nil {
				s.traceWheelPop(ev)
			}
			s.apply(ev)
			s.wheel.release(ev)
		}
		return
	}
	for ev := s.wheel.due(s.cycle); ev != nil; {
		next := ev.next
		if s.Tracer != nil {
			s.traceWheelPop(ev)
		}
		s.apply(ev)
		s.wheel.release(ev)
		ev = next
	}
}

// traceWheelPop emits one EvWheelPop record for a due event. Both cycle
// loops call it so a traced reference run and a traced wheel run yield
// the same stream. Callers pre-check s.Tracer to keep the disabled path
// free; the bail here makes the helper safe on its own.
//
//bow:hotpath
func (s *SM) traceWheelPop(ev *event) {
	if s.Tracer == nil {
		return
	}
	warp := -1
	if ev.f != nil && ev.f.warp != nil {
		warp = ev.f.warp.slot
	} else if ev.w != nil {
		warp = ev.w.slot
	}
	s.Tracer.Emit(s.cycle, s.id, warp, trace.EvWheelPop, int32(ev.kind))
}

// apply performs one completion record.
//
//bow:hotpath
func (s *SM) apply(ev *event) {
	switch ev.kind {
	case evALU:
		f := ev.f
		in := f.in
		if in.HasDstPred {
			w := f.warp
			old := w.preds[in.DstPred]
			w.preds[in.DstPred] = (old &^ ev.mask) | (ev.predOut & ev.mask)
		}
		s.writeback(f, ev.result, ev.mask)
	case evMem:
		if ev.isLoad {
			s.writeback(ev.f, ev.result, ev.mask)
		} else {
			s.completeNoDest(ev.f)
		}
	case evBranch:
		s.resolveBranch(ev.f, ev.mask)
	case evExitRet:
		f := ev.f
		w := f.warp
		w.exitLanes(ev.mask)
		w.stalled = false
		s.completeNoDest(f)
		if w.top() == nil {
			s.warpExited(w)
		}
	case evBar:
		w := ev.f.warp
		s.completeNoDest(ev.f)
		s.barrierArrive(w)
	case evNoDest:
		s.completeNoDest(ev.f)
	case evDelivery:
		f := ev.f
		f.pushDelivery(f.slotMask(ev.reg), ev.result)
	case evWarpExit:
		s.warpExited(ev.w)
	}
}

// instEvent allocates an event bound to f.
//
//bow:hotpath
func (s *SM) instEvent(kind evKind, f *inflight) *event {
	ev := s.wheel.alloc()
	ev.kind = kind
	ev.f = f
	return ev
}

// readyLess is the dispatch priority: oldest-issued first, then warp
// slot, then per-warp program order — the stable form of the seed's
// sort key (issueCycle, slot), whose ties are same-warp instructions in
// issue order.
func readyLess(a, b *inflight) bool {
	if a.issueCycle != b.issueCycle {
		return a.issueCycle < b.issueCycle
	}
	if a.warp.slot != b.warp.slot {
		return a.warp.slot < b.warp.slot
	}
	return a.seq < b.seq
}

// readyInsert files f into the dispatch-ordered ready list. Newly
// ready instructions usually belong at the tail (their issue cycle is
// recent), so insertion walks backwards from the tail.
//
//bow:hotpath
func (s *SM) readyInsert(f *inflight) {
	at := s.readyTail
	for at != nil && readyLess(f, at) {
		at = at.rprev
	}
	if at == nil { // new head
		f.rprev = nil
		f.rnext = s.readyHead
		if s.readyHead != nil {
			s.readyHead.rprev = f
		} else {
			s.readyTail = f
		}
		s.readyHead = f
		return
	}
	f.rprev = at
	f.rnext = at.rnext
	if at.rnext != nil {
		at.rnext.rprev = f
	} else {
		s.readyTail = f
	}
	at.rnext = f
}

// readyRemove unlinks f from the ready list.
//
//bow:hotpath
func (s *SM) readyRemove(f *inflight) {
	if f.rprev != nil {
		f.rprev.rnext = f.rnext
	} else {
		s.readyHead = f.rnext
	}
	if f.rnext != nil {
		f.rnext.rprev = f.rprev
	} else {
		s.readyTail = f.rprev
	}
	f.rprev, f.rnext = nil, nil
}

// wheelSpan computes the calendar horizon the configuration needs: the
// largest completion latency any instruction can schedule, plus the
// coalescing serialization bound (one transaction per cycle, at most
// WarpSize segments) and slack.
func wheelSpan(alu, fpu, sfu, l1, l2, dram, rfLat int) int {
	span := alu
	for _, l := range []int{fpu, sfu, l1, l2, dram, rfLat, 8} {
		if l > span {
			span = l
		}
	}
	return span + isa.WarpSize + 2
}
