package sm

import (
	"bow/internal/exec"
	"bow/internal/isa"
	"bow/internal/trace"
)

// canIssueWarp reports whether the warp can accept a new instruction
// this cycle (structural conditions; per-instruction hazards are checked
// against the scoreboard after fetching).
//
//bow:hotpath
func (s *SM) canIssueWarp(w *warpCtx) bool {
	if w.ctaID < 0 || w.done || w.stalled || len(w.collectors) >= collectorsPerWarp {
		return false
	}
	if s.busyCollectors >= s.gcfg.NumOCUs {
		return false // operand-collector pool exhausted
	}
	return w.top() != nil
}

// collectorsPerWarp is how many in-flight instructions of one warp may
// occupy operand collectors simultaneously (dual issue).
const collectorsPerWarp = 2

// issue runs every warp scheduler for one cycle.
//
//bow:hotpath
func (s *SM) issue() {
	for _, sched := range s.scheds {
		issued := 0
		for _, wid := range sched.Order(s.canIssue) {
			if issued >= s.gcfg.IssuePerSched {
				break
			}
			w := s.warps[wid]
			if !s.canIssueWarp(w) {
				continue
			}
			t := w.top()
			if t == nil {
				s.warpExited(w)
				continue
			}
			if t.pc >= len(s.kernel.Program.Code) {
				// Fell off the end: treat as exit.
				w.exitLanes(t.mask)
				if w.top() == nil {
					s.warpExited(w)
				}
				continue
			}
			in := &s.kernel.Program.Code[t.pc]
			if !s.sb.CanIssue(wid, in) {
				s.st.ScoreboardStalls++
				continue
			}
			s.issueInstruction(w, t, in)
			sched.Issued(wid)
			issued++
		}
	}
}

// issueInstruction moves one instruction into the operand-collection
// stage: the window engine slides (possibly evicting values to the RF),
// forwarded operands are captured immediately, and RF reads are enqueued
// to the banks.
//
//bow:hotpath
func (s *SM) issueInstruction(w *warpCtx, t *simtEntry, in *isa.Instruction) {
	s.sb.Reserve(w.slot, in)
	w.issued++

	f := s.allocInflight()
	f.in = in
	f.warp = w
	f.execMask = t.mask
	f.issueCycle = s.cycle

	// Control flow: stall the warp until resolution.
	if in.Op == isa.OpBra || in.Op == isa.OpExit || in.Op == isa.OpRet || in.Op == isa.OpBar {
		w.stalled = true
	}
	// Advance the PC now; branches overwrite it at resolution.
	t.pc++

	// Fig. 8: number of distinct register source operands.
	_, nsrc := in.UniqueSrcRegs()
	s.st.SrcOperands.Observe(nsrc)

	// Capture the destination's current value before the window slides:
	// it is the merge base for partial (predicated/divergent) writes and
	// must be read while a superseded window entry still holds it.
	if d, ok := in.DstReg(); ok {
		f.oldDst = s.effectiveValue(w.slot, d)
	}

	// Slide the window. Evictions enqueue RF writes through the engine
	// sink; forwarded operands fill instantly (multi-operand forwarding).
	eng := s.engines[w.slot]
	var coalescedBefore int64
	if s.Tracer != nil {
		coalescedBefore = eng.Coalesced()
	}
	plan := eng.Advance(in)
	f.seq = plan.Seq

	if tr := s.Tracer; tr != nil {
		tr.Emit(s.cycle, s.id, w.slot, trace.EvWarpIssue, int32(in.PC))
		for i := 0; i < plan.NBypassed; i++ {
			tr.Emit(s.cycle, s.id, w.slot, trace.EvBOCHit, int32(plan.BypassedRegs[i]))
		}
		for i := 0; i < plan.NPendingRegs; i++ {
			tr.Emit(s.cycle, s.id, w.slot, trace.EvBOCHit, int32(plan.PendingRegs[i]))
		}
		for i := 0; i < plan.NNeedRF; i++ {
			tr.Emit(s.cycle, s.id, w.slot, trace.EvBOCMiss, int32(plan.NeedRF[i]))
		}
		if d, ok := in.DstReg(); ok && eng.Coalesced() > coalescedBefore {
			tr.Emit(s.cycle, s.id, w.slot, trace.EvWriteConsolidate, int32(d))
		}
	}

	if s.bcfg.ForwardThroughPort {
		// RFC comparator mode: the cache is organized like the RF, so a
		// hit avoids the bank port but still traverses the same
		// arbitration/crossbar pipeline and the collector's single port
		// — only bank conflicts are saved (paper §V-A).
		f.outstanding = plan.NNeedRF + plan.NBypassed
		for i := 0; i < plan.NBypassed; i++ {
			ev := s.instEvent(evDelivery, f)
			ev.reg = plan.BypassedRegs[i]
			ev.result = plan.Bypassed[i]
			s.schedule(s.gcfg.RFAccessLat, ev)
		}
	} else {
		for i := 0; i < plan.NBypassed; i++ {
			f.fillReg(plan.BypassedRegs[i], plan.Bypassed[i])
		}
		f.outstanding = plan.NNeedRF
	}
	// Bank reads deliver through f.DeliverRead (regfile.ReadSink): the
	// value enters this collector, fills the window engine, and serves
	// every merged waiter — the seed's per-read closure, devirtualized.
	for i := 0; i < plan.NNeedRF; i++ {
		s.rf.EnqueueReadSink(w.slot, plan.NeedRF[i], f)
	}

	// Operands merged into an earlier in-flight fill (request merging in
	// the BOC): no new bank read; the value arrives with that fill
	// through this collector's own port.
	for i := 0; i < plan.NPendingRegs; i++ {
		w.fillWaiters = append(w.fillWaiters, fillWaiter{reg: plan.PendingRegs[i], f: f})
		f.outstanding++
	}

	// Non-register operands resolve immediately.
	for i := 0; i < in.NSrc; i++ {
		o := in.Srcs[i]
		switch o.Kind {
		case isa.OpdImm:
			f.srcVals[i] = exec.Broadcast(o.Imm)
		case isa.OpdSpecial:
			f.srcVals[i] = s.specialValue(w, o.Spec)
		case isa.OpdPred:
			f.predSrc = w.preds[o.Reg]
		case isa.OpdReg:
			if o.Reg == isa.RegZero {
				f.srcVals[i] = coreValue{}
			}
		}
	}

	w.collectors = append(w.collectors, f)
	s.busyCollectors++
	s.st.Issued++

	if s.CaptureTrace {
		key := [2]int{w.ctaID, w.warpInCTA}
		s.Traces[key] = append(s.Traces[key], in)
	}
}
