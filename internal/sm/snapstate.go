package sm

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sort"

	"bow/internal/core"
	"bow/internal/isa"
	"bow/internal/mem"
	"bow/internal/regfile"
	"bow/internal/snap"
)

// This file serializes one SM's complete pipeline state (DESIGN.md
// §10). The pointer graph — in-flight instruction records referenced by
// collectors, the ready list, timing-wheel events, and register-file
// read sinks — is flattened through a dense in-flight ID table built by
// a deterministic walk: collectors in warp-slot order first, then
// event-only records (dispatched instructions awaiting completion) in
// wheel-firing order. Free lists, scratch buffers, and caches (wheel
// free list, freeInflights, segScratch, the scheduler ranking cache)
// are derived state: they are rebuilt empty on restore, which is
// architecturally indistinguishable from the recycled-but-stale records
// a cold run carries, because every consumer overwrites a record before
// reading it.

// StateHash fingerprints the kernel for snapshot compatibility checks:
// program geometry, launch parameters, and every instruction excluding
// its BOW-WR writeback hint and derived caches (hazard masks, labels).
// Hint-agnosticism is deliberate — it lets a forked sweep restore a
// baseline warm-up into a bow-wr run of the same kernel, where only the
// compiler annotation differs.
func (k *Kernel) StateHash() string {
	h := sha256.New()
	var b [8]byte
	wi := func(v int64) {
		binary.LittleEndian.PutUint64(b[:], uint64(v))
		h.Write(b[:])
	}
	wb := func(v bool) {
		if v {
			h.Write([]byte{1})
		} else {
			h.Write([]byte{0})
		}
	}
	wi(int64(k.GridDim))
	wi(int64(k.BlockDim))
	wi(int64(k.SharedLen))
	wi(int64(len(k.Params)))
	for _, p := range k.Params {
		wi(int64(p))
	}
	wi(int64(len(k.Program.Code)))
	for i := range k.Program.Code {
		in := &k.Program.Code[i]
		wi(int64(in.PC))
		wi(int64(in.Op))
		wi(int64(in.Cmp))
		wi(int64(in.Space))
		wb(in.HasDst)
		wi(int64(in.Dst))
		wi(int64(in.DstPred))
		wb(in.HasDstPred)
		wi(int64(in.NSrc))
		for _, o := range in.Srcs {
			wi(int64(o.Kind))
			wi(int64(o.Reg))
			wi(int64(o.Imm))
			wi(int64(o.Spec))
		}
		wi(int64(in.PredReg))
		wb(in.PredNeg)
		wi(int64(in.Target))
		wi(int64(in.ImmOff))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// SaveState serializes the run statistics, including the residency
// histograms.
func (r *RunStats) SaveState(enc *snap.Encoder) {
	enc.I64(r.Cycles)
	enc.I64(r.Issued)
	enc.I64(r.Executed)
	enc.I64(r.CTAsRetired)
	enc.I64(r.ScoreboardStalls)
	enc.I64(r.FUStalls)
	enc.I64(r.Divergences)
	enc.I64(r.MemTransactions)
	enc.I64(r.TotalInstCycles)
	enc.I64(r.OCStageCycles)
	enc.I64(r.MemInsts)
	enc.I64(r.MemTotalCycles)
	enc.I64(r.MemOCCycles)
	enc.I64(r.NonMemInsts)
	enc.I64(r.NonMemTotalCycles)
	enc.I64(r.NonMemOCCycles)
	for _, v := range r.WritebacksByHint {
		enc.I64(v)
	}
	for _, h := range []interface {
		SaveState(*snap.Encoder)
	}{r.OccupancyBOC, r.OccupancyOCU, r.SrcOperands} {
		enc.Bool(h != nil)
	}
	if r.OccupancyBOC != nil {
		r.OccupancyBOC.SaveState(enc)
	}
	if r.OccupancyOCU != nil {
		r.OccupancyOCU.SaveState(enc)
	}
	if r.SrcOperands != nil {
		r.SrcOperands.SaveState(enc)
	}
}

// LoadState restores run statistics written by SaveState.
func (r *RunStats) LoadState(dec *snap.Decoder) {
	r.Cycles = dec.I64()
	r.Issued = dec.I64()
	r.Executed = dec.I64()
	r.CTAsRetired = dec.I64()
	r.ScoreboardStalls = dec.I64()
	r.FUStalls = dec.I64()
	r.Divergences = dec.I64()
	r.MemTransactions = dec.I64()
	r.TotalInstCycles = dec.I64()
	r.OCStageCycles = dec.I64()
	r.MemInsts = dec.I64()
	r.MemTotalCycles = dec.I64()
	r.MemOCCycles = dec.I64()
	r.NonMemInsts = dec.I64()
	r.NonMemTotalCycles = dec.I64()
	r.NonMemOCCycles = dec.I64()
	for i := range r.WritebacksByHint {
		r.WritebacksByHint[i] = dec.I64()
	}
	hasBOC, hasOCU, hasSrc := dec.Bool(), dec.Bool(), dec.Bool()
	if hasBOC {
		if r.OccupancyBOC == nil {
			dec.Fail(fmt.Errorf("sm: snapshot has OccupancyBOC, target histogram is nil"))
			return
		}
		r.OccupancyBOC.LoadState(dec)
	}
	if hasOCU {
		if r.OccupancyOCU == nil {
			dec.Fail(fmt.Errorf("sm: snapshot has OccupancyOCU, target histogram is nil"))
			return
		}
		r.OccupancyOCU.LoadState(dec)
	}
	if hasSrc {
		if r.SrcOperands == nil {
			dec.Fail(fmt.Errorf("sm: snapshot has SrcOperands, target histogram is nil"))
			return
		}
		r.SrcOperands.LoadState(dec)
	}
}

// SaveState serializes the SM's complete pipeline state. The snapshot
// must be taken at a device-cycle boundary (after Cycle returns): the
// current cycle's wheel slot is then drained and every pending event
// fires strictly in the future.
func (s *SM) SaveState(enc *snap.Encoder) {
	if s.ref {
		enc.Fail(fmt.Errorf("sm %d: reference-loop state is not snapshottable", s.id))
		return
	}
	numRegs := s.kernel.Program.NumRegs()

	// Build the in-flight ID table: collectors first (warp-slot order,
	// issue order within a warp), then event-only records (dispatched,
	// completion pending) in wheel order.
	var flights []*inflight
	ids := make(map[*inflight]int32)
	intern := func(f *inflight) {
		if f == nil {
			return
		}
		if _, ok := ids[f]; ok {
			return
		}
		ids[f] = int32(len(flights))
		flights = append(flights, f)
	}
	for _, w := range s.warps {
		for _, f := range w.collectors {
			intern(f)
		}
	}
	if s.wheel.slots[s.cycle&s.wheel.mask].head != nil {
		enc.Fail(fmt.Errorf("sm %d: wheel slot for cycle %d not drained (snapshot requires a cycle boundary)", s.id, s.cycle))
		return
	}
	type schedEvent struct {
		at int64
		ev *event
	}
	var events []schedEvent
	for d := int64(1); d <= s.wheel.mask; d++ {
		at := s.cycle + d
		for ev := s.wheel.slots[at&s.wheel.mask].head; ev != nil; ev = ev.next {
			events = append(events, schedEvent{at: at, ev: ev})
			intern(ev.f)
		}
	}
	for _, fe := range s.wheel.far {
		events = append(events, schedEvent{at: fe.at, ev: fe.ev})
		intern(fe.ev.f)
	}

	enc.I64(s.cycle)
	s.st.SaveState(enc)
	enc.Int(s.freeWarpSlots)
	enc.Int(s.freeTBSlots)

	// In-flight records. Instruction pointers serialize as program
	// counters; warp pointers as slot numbers.
	enc.U32(uint32(len(flights)))
	for _, f := range flights {
		enc.Int(f.in.PC)
		enc.Int(f.warp.slot)
		enc.I64(f.seq)
		enc.U32(f.execMask)
		enc.I64(f.issueCycle)
		enc.I64(f.collectCycle)
		enc.I64(f.dispatchCycle)
		for i := range f.srcVals {
			enc.Words(f.srcVals[i][:])
		}
		enc.Words(f.oldDst[:])
		enc.U32(f.predSrc)
		enc.Int(f.outstanding)
		enc.Bool(f.ready)
		enc.U8(f.delivLen)
		for j := uint8(0); j < f.delivLen; j++ {
			d := &f.deliv[(f.delivHead+j)%uint8(len(f.deliv))]
			enc.U8(d.slots)
			enc.Words(d.val[:])
		}
	}

	// Warp contexts, slot order. The active list is derived (resident and
	// not done) and rebuilt on restore.
	enc.Int(len(s.warps))
	for _, w := range s.warps {
		enc.Int(w.ctaID)
		enc.Int(w.warpInCTA)
		enc.Bool(w.done)
		enc.Bool(w.stalled)
		enc.Bool(w.atBarrier)
		enc.I64(w.issued)
		for _, p := range w.preds {
			enc.U32(p)
		}
		enc.U32(uint32(len(w.stack)))
		for _, fr := range w.stack {
			enc.Int(fr.pc)
			enc.Int(fr.rpc)
			enc.U32(fr.mask)
		}
		enc.U32(uint32(len(w.collectors)))
		for _, f := range w.collectors {
			enc.I32(ids[f])
		}
		enc.U32(uint32(len(w.fillWaiters)))
		for _, fw := range w.fillWaiters {
			enc.U8(fw.reg)
			enc.I32(ids[fw.f])
		}
	}

	// Resident CTAs, ascending id.
	ctaIDs := make([]int, 0, len(s.ctas))
	for id := range s.ctas {
		ctaIDs = append(ctaIDs, id)
	}
	sort.Ints(ctaIDs)
	enc.U32(uint32(len(ctaIDs)))
	for _, id := range ctaIDs {
		cta := s.ctas[id]
		enc.Int(cta.ctaID)
		enc.U32(uint32(len(cta.warps)))
		for _, slot := range cta.warps {
			enc.Int(slot)
		}
		enc.Int(cta.arrived)
		enc.Int(cta.liveWarp)
		cta.shared.SaveState(enc)
	}

	// Dispatch-ordered ready list, head to tail.
	var readyCount uint32
	for f := s.readyHead; f != nil; f = f.rnext {
		readyCount++
	}
	enc.U32(readyCount)
	for f := s.readyHead; f != nil; f = f.rnext {
		enc.I32(ids[f])
	}

	// Timing wheel: every pending event with its absolute fire cycle, in
	// firing order (ascending cycle, chain order within a cycle), then
	// far-horizon events in their parking order.
	enc.U32(uint32(len(events)))
	for _, se := range events {
		ev := se.ev
		enc.I64(se.at)
		fid := int32(-1)
		if ev.f != nil {
			fid = ids[ev.f]
		}
		enc.I32(fid)
		wslot := -1
		if ev.w != nil {
			wslot = ev.w.slot
		}
		enc.Int(wslot)
		enc.U8(uint8(ev.kind))
		enc.Bool(ev.isLoad)
		enc.U8(ev.reg)
		enc.U32(ev.mask)
		enc.U32(ev.predOut)
		enc.Words(ev.result[:])
	}

	s.sb.SaveState(enc)
	enc.Int(len(s.scheds))
	for _, sc := range s.scheds {
		sc.SaveState(enc)
	}
	for _, eng := range s.engines {
		eng.SaveState(enc)
	}
	s.rf.SaveState(enc, numRegs, func(sink regfile.ReadSink) (int32, error) {
		f, ok := sink.(*inflight)
		if !ok {
			return -1, fmt.Errorf("sm: unknown read-sink type %T", sink)
		}
		id, ok := ids[f]
		if !ok {
			return -1, fmt.Errorf("sm: read sink not in the in-flight table")
		}
		return id, nil
	})
	s.hier.L1.SaveState(enc)

	s.saveCaptureMaps(enc)
}

func warpKeyLess(keys [][2]int) func(i, j int) bool {
	return func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	}
}

func (s *SM) saveCaptureMaps(enc *snap.Encoder) {
	regKeys := make([][2]int, 0, len(s.RegSnapshots))
	for k := range s.RegSnapshots {
		regKeys = append(regKeys, k)
	}
	sort.Slice(regKeys, warpKeyLess(regKeys))
	enc.U32(uint32(len(regKeys)))
	for _, k := range regKeys {
		enc.Int(k[0])
		enc.Int(k[1])
		vals := s.RegSnapshots[k]
		enc.U32(uint32(len(vals)))
		for i := range vals {
			enc.Words(vals[i][:])
		}
	}
	trKeys := make([][2]int, 0, len(s.Traces))
	for k := range s.Traces {
		trKeys = append(trKeys, k)
	}
	sort.Slice(trKeys, warpKeyLess(trKeys))
	enc.U32(uint32(len(trKeys)))
	for _, k := range trKeys {
		enc.Int(k[0])
		enc.Int(k[1])
		insts := s.Traces[k]
		enc.U32(uint32(len(insts)))
		for _, in := range insts {
			enc.Int(in.PC)
		}
	}
}

// LoadState restores pipeline state written by SaveState into a freshly
// constructed SM of the same configuration (same kernel, chip config,
// and scheduler partitioning).
func (s *SM) LoadState(dec *snap.Decoder) {
	if s.ref {
		dec.Fail(fmt.Errorf("sm %d: cannot restore into a reference-loop SM", s.id))
		return
	}
	code := s.kernel.Program.Code

	s.cycle = dec.I64()
	s.st.LoadState(dec)
	s.freeWarpSlots = dec.Int()
	s.freeTBSlots = dec.Int()

	n := int(dec.U32())
	if dec.Err() != nil {
		return
	}
	flights := make([]*inflight, n)
	for i := range flights {
		pc := dec.Int()
		slot := dec.Int()
		if dec.Err() != nil {
			return
		}
		if pc < 0 || pc >= len(code) || slot < 0 || slot >= len(s.warps) {
			dec.Fail(fmt.Errorf("sm: in-flight record %d: pc=%d slot=%d out of range", i, pc, slot))
			return
		}
		f := s.allocInflight()
		f.in = &code[pc]
		f.warp = s.warps[slot]
		f.seq = dec.I64()
		f.execMask = dec.U32()
		f.issueCycle = dec.I64()
		f.collectCycle = dec.I64()
		f.dispatchCycle = dec.I64()
		for j := range f.srcVals {
			dec.WordsInto(f.srcVals[j][:])
		}
		dec.WordsInto(f.oldDst[:])
		f.predSrc = dec.U32()
		f.outstanding = dec.Int()
		f.ready = dec.Bool()
		f.delivHead = 0
		f.delivLen = dec.U8()
		if int(f.delivLen) > len(f.deliv) {
			dec.Fail(fmt.Errorf("sm: in-flight record %d: delivery ring length %d", i, f.delivLen))
			return
		}
		for j := uint8(0); j < f.delivLen; j++ {
			f.deliv[j].slots = dec.U8()
			dec.WordsInto(f.deliv[j].val[:])
		}
		if dec.Err() != nil {
			return
		}
		flights[i] = f
	}
	byID := func(id int32) (*inflight, error) {
		if id < 0 {
			return nil, nil
		}
		if int(id) >= len(flights) {
			return nil, fmt.Errorf("sm: in-flight id %d out of range", id)
		}
		return flights[id], nil
	}
	mustByID := func(id int32) *inflight {
		f, err := byID(id)
		if err != nil {
			dec.Fail(err)
			return nil
		}
		if f == nil && dec.Err() == nil {
			dec.Fail(fmt.Errorf("sm: unexpected nil in-flight reference"))
		}
		return f
	}

	wn := dec.Int()
	if dec.Err() != nil {
		return
	}
	if wn != len(s.warps) {
		dec.Fail(fmt.Errorf("sm: snapshot has %d warp slots, target has %d", wn, len(s.warps)))
		return
	}
	for i := range s.active {
		s.active[i] = nil
	}
	s.active = s.active[:0]
	for _, w := range s.warps {
		w.activeIdx = -1
		w.ctaID = dec.Int()
		w.warpInCTA = dec.Int()
		w.done = dec.Bool()
		w.stalled = dec.Bool()
		w.atBarrier = dec.Bool()
		w.issued = dec.I64()
		for p := range w.preds {
			w.preds[p] = dec.U32()
		}
		frames := int(dec.U32())
		if dec.Err() != nil {
			return
		}
		w.stack = w.stack[:0]
		for j := 0; j < frames; j++ {
			var fr simtEntry
			fr.pc = dec.Int()
			fr.rpc = dec.Int()
			fr.mask = dec.U32()
			w.stack = append(w.stack, fr)
		}
		nc := int(dec.U32())
		if dec.Err() != nil {
			return
		}
		if nc > collectorsPerWarp {
			dec.Fail(fmt.Errorf("sm: warp %d has %d collectors (max %d)", w.slot, nc, collectorsPerWarp))
			return
		}
		w.collectors = w.collectors[:0]
		for j := 0; j < nc; j++ {
			f := mustByID(dec.I32())
			if dec.Err() != nil {
				return
			}
			w.collectors = append(w.collectors, f)
		}
		nfw := int(dec.U32())
		if dec.Err() != nil {
			return
		}
		w.fillWaiters = w.fillWaiters[:0]
		for j := 0; j < nfw; j++ {
			reg := dec.U8()
			f := mustByID(dec.I32())
			if dec.Err() != nil {
				return
			}
			w.fillWaiters = append(w.fillWaiters, fillWaiter{reg: reg, f: f})
		}
	}
	// Rebuild the active list in slot order. Order is immaterial to the
	// simulation (see activeAdd) but slot order keeps restored state
	// canonical: a second snapshot of the restored SM is byte-identical.
	for _, w := range s.warps {
		if w.ctaID >= 0 && !w.done {
			s.activeAdd(w)
		}
	}

	s.ctas = make(map[int]*ctaWork)
	cn := int(dec.U32())
	if dec.Err() != nil {
		return
	}
	for i := 0; i < cn; i++ {
		cta := &ctaWork{ctaID: dec.Int()}
		nw := int(dec.U32())
		if dec.Err() != nil {
			return
		}
		for j := 0; j < nw; j++ {
			slot := dec.Int()
			if dec.Err() != nil {
				return
			}
			if slot < 0 || slot >= len(s.warps) {
				dec.Fail(fmt.Errorf("sm: CTA %d references warp slot %d", cta.ctaID, slot))
				return
			}
			cta.warps = append(cta.warps, slot)
		}
		cta.arrived = dec.Int()
		cta.liveWarp = dec.Int()
		cta.shared = mem.NewShared(0)
		cta.shared.LoadState(dec)
		if dec.Err() != nil {
			return
		}
		s.ctas[cta.ctaID] = cta
	}

	s.readyHead, s.readyTail = nil, nil
	rc := int(dec.U32())
	var prev *inflight
	for i := 0; i < rc; i++ {
		f := mustByID(dec.I32())
		if dec.Err() != nil {
			return
		}
		f.rprev, f.rnext = prev, nil
		if prev == nil {
			s.readyHead = f
		} else {
			prev.rnext = f
		}
		s.readyTail = f
		prev = f
	}

	en := int(dec.U32())
	if dec.Err() != nil {
		return
	}
	for i := 0; i < en; i++ {
		at := dec.I64()
		fid := dec.I32()
		wslot := dec.Int()
		if dec.Err() != nil {
			return
		}
		ev := s.wheel.alloc()
		f, err := byID(fid)
		if err != nil {
			s.wheel.release(ev)
			dec.Fail(err)
			return
		}
		ev.f = f
		if wslot >= 0 {
			if wslot >= len(s.warps) {
				s.wheel.release(ev)
				dec.Fail(fmt.Errorf("sm: event %d references warp slot %d", i, wslot))
				return
			}
			ev.w = s.warps[wslot]
		}
		ev.kind = evKind(dec.U8())
		ev.isLoad = dec.Bool()
		ev.reg = dec.U8()
		ev.mask = dec.U32()
		ev.predOut = dec.U32()
		dec.WordsInto(ev.result[:])
		if dec.Err() != nil {
			s.wheel.release(ev)
			return
		}
		if at <= s.cycle {
			s.wheel.release(ev)
			dec.Fail(fmt.Errorf("sm: event %d fires at cycle %d, not after restore cycle %d", i, at, s.cycle))
			return
		}
		s.wheel.schedule(s.cycle, at, ev)
	}

	s.sb.LoadState(dec)
	sn := dec.Int()
	if dec.Err() != nil {
		return
	}
	if sn != len(s.scheds) {
		dec.Fail(fmt.Errorf("sm: snapshot has %d schedulers, target has %d", sn, len(s.scheds)))
		return
	}
	for _, sc := range s.scheds {
		sc.LoadState(dec)
	}
	for _, eng := range s.engines {
		eng.LoadState(dec)
	}
	s.rf.LoadState(dec, func(id int32) (regfile.ReadSink, error) {
		f, err := byID(id)
		if err != nil {
			return nil, err
		}
		if f == nil {
			return nil, fmt.Errorf("sm: nil read sink in register file queue")
		}
		return f, nil
	})
	s.hier.L1.LoadState(dec)

	s.loadCaptureMaps(dec)
	if dec.Err() != nil {
		return
	}

	// Derived state.
	s.busyCollectors = 0
	for _, w := range s.warps {
		s.busyCollectors += len(w.collectors)
	}
	// The tracer's conflict-delta baseline: in a traced cold run this
	// tracks the RF conflict counter exactly (it re-syncs every cycle the
	// counter moves), so seeding it from the restored counter reproduces
	// the cold event stream from the first resumed cycle.
	s.lastBankConflicts = s.rf.Stats().BankConflicts
}

func (s *SM) loadCaptureMaps(dec *snap.Decoder) {
	code := s.kernel.Program.Code
	s.RegSnapshots = make(map[[2]int][]core.Value)
	rn := int(dec.U32())
	if dec.Err() != nil {
		return
	}
	for i := 0; i < rn; i++ {
		key := [2]int{dec.Int(), dec.Int()}
		nv := int(dec.U32())
		if dec.Err() != nil {
			return
		}
		vals := make([]core.Value, nv)
		for j := range vals {
			dec.WordsInto(vals[j][:])
		}
		if dec.Err() != nil {
			return
		}
		s.RegSnapshots[key] = vals
	}
	s.Traces = make(map[[2]int][]*isa.Instruction)
	tn := int(dec.U32())
	if dec.Err() != nil {
		return
	}
	for i := 0; i < tn; i++ {
		key := [2]int{dec.Int(), dec.Int()}
		ni := int(dec.U32())
		if dec.Err() != nil {
			return
		}
		insts := make([]*isa.Instruction, ni)
		for j := range insts {
			pc := dec.Int()
			if dec.Err() != nil {
				return
			}
			if pc < 0 || pc >= len(code) {
				dec.Fail(fmt.Errorf("sm: trace pc %d out of range", pc))
				return
			}
			insts[j] = &code[pc]
		}
		s.Traces[key] = insts
	}
}

// WindowsEmpty reports whether every warp's BOC window is empty; the
// forked sweep planner requires this before restoring a snapshot into a
// differently windowed configuration.
func (s *SM) WindowsEmpty() bool {
	for _, eng := range s.engines {
		if !eng.WindowEmpty() {
			return false
		}
	}
	return true
}
