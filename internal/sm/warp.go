package sm

import (
	"bow/internal/asm"
	"bow/internal/compiler"
	"bow/internal/core"
	"bow/internal/isa"
)

// buildCFG adapts the compiler package's CFG builder (kept behind a
// helper so the Kernel type doesn't leak compiler types).
func buildCFG(p *asm.Program) (*compiler.CFG, error) { return compiler.BuildCFG(p) }

// simtEntry is one frame of the SIMT reconvergence stack (PDOM scheme).
//
//bow:state
type simtEntry struct {
	pc   int
	rpc  int // reconvergence PC; -1 for the base frame
	mask uint32
}

// fillWaiter records that a later instruction's operand merges into an
// in-flight RF read of reg (request merging in the BOC). A warp has at
// most collectorsPerWarp in-flight instructions of at most
// isa.MaxSrcOperands operands, so the list stays tiny and its backing
// array is reused across the warp's lifetime.
//
//bow:state
type fillWaiter struct {
	reg uint8
	f   *inflight
}

// warpCtx is one hardware warp slot.
//
//bow:state
type warpCtx struct {
	sm        *SM //bow:snapskip -- back-pointer to the owning SM, wired at construction
	slot      int // SM-local warp ID
	ctaID     int // resident CTA (-1 = free)
	warpInCTA int
	stack     []simtEntry
	done      bool

	// stalled blocks further issue until an in-flight control
	// instruction (branch/exit/barrier) resolves.
	stalled bool
	// atBarrier marks the warp as having arrived at a bar.sync.
	atBarrier bool

	preds [isa.NumPredRegs]uint32 // per-lane predicate bits

	// collectors are the operand-collector units currently assigned to
	// this warp's in-flight instructions (Pascal dual-issue: up to two).
	collectors []*inflight

	// fillWaiters lists the (register, instruction) pairs waiting on an
	// in-flight RF read of that register.
	fillWaiters []fillWaiter

	// activeIdx is this warp's position in the SM's active list
	// (-1 when not resident or already done).
	activeIdx int //bow:derived -- position in the derived active list; LoadState rebuilds both together

	issued int64 // dynamic instructions issued (sequence numbering)
}

// fullMask returns the active-thread mask of a fresh warp (all lanes of
// BlockDim that fall into this warp).
func fullMask(blockDim, warpInCTA int) uint32 {
	base := warpInCTA * isa.WarpSize
	var m uint32
	for l := 0; l < isa.WarpSize; l++ {
		if base+l < blockDim {
			m |= 1 << uint(l)
		}
	}
	return m
}

// initWarp resets a warp slot for a new CTA.
func (s *SM) initWarp(w *warpCtx, ctaID, warpInCTA int) {
	w.ctaID = ctaID
	w.warpInCTA = warpInCTA
	w.done = false
	w.stalled = false
	w.atBarrier = false
	w.collectors = w.collectors[:0]
	w.fillWaiters = w.fillWaiters[:0]
	w.issued = 0
	w.preds = [isa.NumPredRegs]uint32{}
	w.preds[isa.PredTrue] = 0xFFFFFFFF
	w.stack = w.stack[:0]
	w.stack = append(w.stack, simtEntry{
		pc: 0, rpc: -1, mask: fullMask(s.kernel.BlockDim, warpInCTA),
	})
	s.activeAdd(w)
}

// activeAdd registers w on the SM's active-warp list (resident, not
// done). List order is immaterial: every per-warp action in the cycle
// loop touches disjoint state.
func (s *SM) activeAdd(w *warpCtx) {
	if w.activeIdx >= 0 {
		return
	}
	w.activeIdx = len(s.active)
	s.active = append(s.active, w)
}

// activeRemove drops w from the active list (swap-remove).
func (s *SM) activeRemove(w *warpCtx) {
	i := w.activeIdx
	if i < 0 {
		return
	}
	last := len(s.active) - 1
	s.active[i] = s.active[last]
	s.active[i].activeIdx = i
	s.active[last] = nil
	s.active = s.active[:last]
	w.activeIdx = -1
}

// top returns the active SIMT frame after popping exhausted frames
// (reconverged or fully-exited paths). Returns nil when the warp has no
// work left.
func (w *warpCtx) top() *simtEntry {
	for len(w.stack) > 0 {
		t := &w.stack[len(w.stack)-1]
		if t.mask == 0 {
			w.stack = w.stack[:len(w.stack)-1]
			continue
		}
		if t.rpc >= 0 && t.pc == t.rpc {
			w.stack = w.stack[:len(w.stack)-1]
			continue
		}
		return t
	}
	return nil
}

// exitLanes terminates the given lanes across every stack frame.
func (w *warpCtx) exitLanes(mask uint32) {
	for i := range w.stack {
		w.stack[i].mask &^= mask
	}
}

// predBits resolves a guard predicate to per-lane bits.
func (w *warpCtx) predBits(reg uint8, neg bool) uint32 {
	b := w.preds[reg]
	if neg {
		b = ^b
	}
	return b
}

// effectiveValue returns the architecturally current value of (warp,
// reg): the window copy when buffered, else the RF copy.
func (s *SM) effectiveValue(w int, reg uint8) core.Value {
	if reg == isa.RegZero {
		return core.Value{}
	}
	if v, ok := s.engines[w].Lookup(reg); ok {
		return v
	}
	return s.rf.Peek(w, reg)
}

// specialValue materializes a special register for the warp.
func (s *SM) specialValue(w *warpCtx, sp isa.Special) core.Value {
	var out core.Value
	switch sp {
	case isa.SpecTidX:
		base := w.warpInCTA * isa.WarpSize
		for l := range out {
			out[l] = uint32(base + l)
		}
	case isa.SpecCtaidX:
		for l := range out {
			out[l] = uint32(w.ctaID)
		}
	case isa.SpecNtidX:
		for l := range out {
			out[l] = uint32(s.kernel.BlockDim)
		}
	case isa.SpecNctaidX:
		for l := range out {
			out[l] = uint32(s.kernel.GridDim)
		}
	case isa.SpecLaneID:
		for l := range out {
			out[l] = uint32(l)
		}
	case isa.SpecWarpID:
		for l := range out {
			out[l] = uint32(w.warpInCTA)
		}
	}
	return out
}

// warpExited handles a warp finishing all lanes. In-flight instructions
// (e.g. a long-latency load issued before the exit) must drain first so
// the register snapshot is architecturally final.
func (s *SM) warpExited(w *warpCtx) {
	if w.done {
		return
	}
	if s.sb.Busy(w.slot) || len(w.collectors) > 0 {
		ev := s.wheel.alloc()
		ev.kind = evWarpExit
		ev.w = w
		s.schedule(1, ev)
		return
	}
	w.done = true
	s.activeRemove(w)
	cta := s.ctas[w.ctaID]

	if s.CaptureRegs {
		n := s.kernel.Program.NumRegs()
		snap := make([]core.Value, n)
		for r := 0; r < n; r++ {
			snap[r] = s.effectiveValue(w.slot, uint8(r))
		}
		s.RegSnapshots[[2]int{w.ctaID, w.warpInCTA}] = snap
	}
	// The register context dies with the warp: discard the window.
	s.engines[w.slot].Flush()

	cta.liveWarp--
	if cta.liveWarp == 0 {
		s.retireCTA(cta)
		return
	}
	// A warp exiting while siblings wait at a barrier can complete the
	// arrival count (CUDA forbids divergent barriers, but a defensive
	// release beats a silent hang).
	s.releaseBarrierIfComplete(cta)
}

// retireCTA frees the CTA's resources.
func (s *SM) retireCTA(cta *ctaWork) {
	for _, slot := range cta.warps {
		s.warps[slot].ctaID = -1
	}
	s.freeWarpSlots += len(cta.warps)
	s.freeTBSlots++
	delete(s.ctas, cta.ctaID)
	s.st.CTAsRetired++
}

// barrierArrive handles a warp reaching bar.sync; when the whole CTA has
// arrived, everyone is released.
func (s *SM) barrierArrive(w *warpCtx) {
	cta := s.ctas[w.ctaID]
	w.atBarrier = true
	cta.arrived++
	s.releaseBarrierIfComplete(cta)
}

// releaseBarrierIfComplete opens the CTA's barrier when every live warp
// has arrived.
func (s *SM) releaseBarrierIfComplete(cta *ctaWork) {
	if cta.arrived == 0 || cta.arrived < cta.liveWarp {
		return
	}
	cta.arrived = 0
	for _, slot := range cta.warps {
		ww := s.warps[slot]
		if ww.atBarrier {
			ww.atBarrier = false
			ww.stalled = false
		}
	}
}
