// Energystudy: compare register-file dynamic energy across the four
// write policies (baseline, BOW write-through, BOW write-back, BOW-WR
// with compiler hints) on every benchmark — the data behind the paper's
// Fig. 13 and Table I generalized to whole kernels.
//
//	go run ./examples/energystudy
package main

import (
	"fmt"
	"log"

	"bow/internal/compiler"
	"bow/internal/config"
	"bow/internal/core"
	"bow/internal/energy"
	"bow/internal/gpu"
	"bow/internal/mem"
	"bow/internal/sm"
	"bow/internal/workloads"
)

func run(b *workloads.Benchmark, bcfg core.Config) *gpu.Result {
	prog := b.Program()
	if bcfg.Policy == core.PolicyCompilerHints {
		if _, err := compiler.Annotate(prog, bcfg.IW); err != nil {
			log.Fatal(err)
		}
	}
	m := mem.NewMemory()
	if b.Init != nil {
		if err := b.Init(m); err != nil {
			log.Fatal(err)
		}
	}
	k := &sm.Kernel{
		Program: prog, GridDim: b.GridDim, BlockDim: b.BlockDim,
		SharedLen: b.SharedLen, Params: b.Params,
	}
	dev, err := gpu.New(config.SimDefault(), bcfg, k, m)
	if err != nil {
		log.Fatal(err)
	}
	res, err := dev.Run(0)
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func main() {
	configs := []struct {
		name string
		cfg  core.Config
	}{
		{"baseline", core.Config{Policy: core.PolicyBaseline}},
		{"bow-wt", core.Config{IW: 3, Policy: core.PolicyWriteThrough}},
		{"bow-wb", core.Config{IW: 3, Policy: core.PolicyWriteBack}},
		{"bow-wr", core.Config{IW: 3, Capacity: 6, Policy: core.PolicyCompilerHints}},
	}

	fmt.Printf("%-11s", "benchmark")
	for _, c := range configs {
		fmt.Printf(" %10s", c.name)
	}
	fmt.Println("   (normalized RF dynamic energy incl. overhead)")

	means := make([]float64, len(configs))
	suite := workloads.All()
	for _, b := range suite {
		var baseline float64
		fmt.Printf("%-11s", b.Name)
		for i, c := range configs {
			res := run(b, c.cfg)
			rep := energy.Compute(res.Energy)
			total := rep.TotalPJ()
			if i == 0 {
				baseline = rep.RFDynamicPJ
			}
			norm := total / baseline
			means[i] += norm / float64(len(suite))
			fmt.Printf(" %9.1f%%", 100*norm)
		}
		fmt.Println()
	}
	fmt.Printf("%-11s", "MEAN")
	for _, m := range means {
		fmt.Printf(" %9.1f%%", 100*m)
	}
	fmt.Println()
	fmt.Printf("\nBOW-WR saves %.1f%% of RF dynamic energy (paper: 55%%).\n",
		100*(1-means[len(means)-1]))
}
