// Customkernel: write your own kernel in the SASS-like dialect, inspect
// what the BOW-WR compiler pass decides for every destination register,
// then run it under the bypassing pipeline and verify the result.
//
//	go run ./examples/customkernel
package main

import (
	"fmt"
	"log"

	"bow/internal/asm"
	"bow/internal/compiler"
	"bow/internal/config"
	"bow/internal/core"
	"bow/internal/experiments"
	"bow/internal/gpu"
	"bow/internal/mem"
	"bow/internal/sm"
)

// A horner-rule polynomial evaluation: out[i] = ((c3*x + c2)*x + c1)*x + c0
// over integers. The accumulator r10 is rewritten three times back to
// back — prime write-consolidation territory for BOW-WR.
const horner = `
.kernel horner
  mov r0, %tid.x
  mov r1, %ctaid.x
  mov r2, %ntid.x
  mad r3, r1, r2, r0
  shl r4, r3, 0x2
  ld.param r5, [rz+0x0]       // &x
  ld.param r6, [rz+0x4]       // &out
  add r7, r5, r4
  ld.global r8, [r7+0x0]      // x
  mov r10, 0x7                // c3
  mad r10, r10, r8, rz        // c3*x       (note rz addend)
  add r10, r10, 0x5           // +c2
  mul r10, r10, r8
  add r10, r10, 0x3           // +c1
  mul r10, r10, r8
  add r10, r10, 0x1           // +c0
  add r11, r6, r4
  st.global [r11+0x0], r10
  exit
`

func main() {
	prog, err := asm.Parse(horner)
	if err != nil {
		log.Fatal(err)
	}

	// Show the compiler's view before running anything.
	dump, err := experiments.HintDump(prog.Clone(), 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("compiler analysis (IW 3):")
	fmt.Println(dump)

	// Annotate the real program and run it under BOW-WR.
	if _, err := compiler.Annotate(prog, 3); err != nil {
		log.Fatal(err)
	}
	const grid, block = 4, 128
	const n = grid * block
	m := mem.NewMemory()
	for i := 0; i < n; i++ {
		m.Write32(0x1000+uint32(4*i), uint32(i%50))
	}
	k := &sm.Kernel{
		Program: prog, GridDim: grid, BlockDim: block,
		Params: []uint32{0x1000, 0x9000},
	}
	dev, err := gpu.New(config.SimDefault(),
		core.Config{IW: 3, Capacity: 6, Policy: core.PolicyCompilerHints}, k, m)
	if err != nil {
		log.Fatal(err)
	}
	res, err := dev.Run(0)
	if err != nil {
		log.Fatal(err)
	}

	for i := 0; i < n; i++ {
		x := uint32(i % 50)
		want := ((7*x+5)*x+3)*x + 1
		got, _ := m.Read32(0x9000 + uint32(4*i))
		if got != want {
			log.Fatalf("out[%d] = %d, want %d", i, got, want)
		}
	}
	fmt.Printf("horner result verified (%d threads)\n", n)
	fmt.Printf("reads bypassed: %.1f%%   writes eliminated: %.1f%%   IPC: %.3f\n",
		100*res.Engine.ReadBypassFrac(),
		100*res.Engine.WriteBypassFrac(),
		res.Stats.IPC())
	fmt.Printf("the r10 chain consolidated %d of its writes inside the window\n",
		res.Engine.CoalescedWrites)
}
