// Quickstart: assemble a small kernel, run it on the simulated GPU with
// and without BOW, and compare register-file traffic, performance, and
// energy.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"bow/internal/asm"
	"bow/internal/compiler"
	"bow/internal/config"
	"bow/internal/core"
	"bow/internal/energy"
	"bow/internal/gpu"
	"bow/internal/mem"
	"bow/internal/sm"
)

// A SAXPY kernel in the simulator's SASS-like dialect:
// y[i] = a*x[i] + y[i] over integers.
const saxpy = `
.kernel saxpy
  mov r0, %tid.x
  mov r1, %ctaid.x
  mov r2, %ntid.x
  mad r3, r1, r2, r0          // global thread id
  shl r4, r3, 0x2             // byte offset
  ld.param r5, [rz+0x0]       // &x
  ld.param r6, [rz+0x4]       // &y
  ld.param r7, [rz+0x8]       // a
  add r8, r5, r4
  add r9, r6, r4
  ld.global r10, [r8+0x0]
  ld.global r11, [r9+0x0]
  mad r12, r7, r10, r11       // a*x + y
  st.global [r9+0x0], r12
  exit
`

func run(policy core.Config, annotate bool) (*gpu.Result, *mem.Memory) {
	prog, err := asm.Parse(saxpy)
	if err != nil {
		log.Fatal(err)
	}
	if annotate {
		if _, err := compiler.Annotate(prog, policy.IW); err != nil {
			log.Fatal(err)
		}
	}

	const n = 1024
	m := mem.NewMemory()
	for i := 0; i < n; i++ {
		m.Write32(0x1000+uint32(4*i), uint32(i))     // x
		m.Write32(0x8000+uint32(4*i), uint32(100+i)) // y
	}

	kernel := &sm.Kernel{
		Program: prog,
		GridDim: 8, BlockDim: 128,
		Params: []uint32{0x1000, 0x8000, 3}, // &x, &y, a
	}
	dev, err := gpu.New(config.SimDefault(), policy, kernel, m)
	if err != nil {
		log.Fatal(err)
	}
	res, err := dev.Run(0)
	if err != nil {
		log.Fatal(err)
	}
	return res, m
}

func main() {
	base, mm := run(core.Config{Policy: core.PolicyBaseline}, false)
	bow, _ := run(core.Config{IW: 3, Capacity: 6, Policy: core.PolicyCompilerHints}, true)

	// Validate the computation: y[i] = 3*i + (100+i).
	for i := 0; i < 1024; i++ {
		got, _ := mm.Read32(0x8000 + uint32(4*i))
		want := uint32(3*i + 100 + i)
		if got != want {
			log.Fatalf("y[%d] = %d, want %d", i, got, want)
		}
	}
	fmt.Println("saxpy result verified (1024 elements)")

	eBase := energy.Compute(base.Energy)
	eBow := energy.Compute(bow.Energy)
	fmt.Printf("\n%-22s %12s %12s\n", "", "baseline", "BOW-WR")
	fmt.Printf("%-22s %12d %12d\n", "cycles", base.Cycles, bow.Cycles)
	fmt.Printf("%-22s %12.3f %12.3f\n", "IPC", base.Stats.IPC(), bow.Stats.IPC())
	fmt.Printf("%-22s %12d %12d\n", "RF reads", base.Engine.RFReads, bow.Engine.RFReads)
	fmt.Printf("%-22s %12d %12d\n", "RF writes", base.Engine.RFWrites, bow.Engine.RFWrites)
	fmt.Printf("%-22s %12s %12s\n", "reads bypassed", "-",
		fmt.Sprintf("%.1f%%", 100*bow.Engine.ReadBypassFrac()))
	fmt.Printf("%-22s %12.1f %12.1f\n", "RF dyn energy (nJ)",
		eBase.RFDynamicPJ/1000, eBow.TotalPJ()/1000)
	fmt.Printf("\nIPC improvement: %+.1f%%, RF energy saving: %.1f%%\n",
		100*(bow.Stats.IPC()/base.Stats.IPC()-1),
		100*(1-eBow.TotalPJ()/eBase.RFDynamicPJ))
}
