// Windowsweep: sweep the instruction-window size on one benchmark and
// print the bypass-opportunity and performance curves — the per-kernel
// view behind the paper's Figs. 3 and 10, including where the
// diminishing returns set in.
//
// The seven points (baseline + IW 2–7 under BOW-WR) are submitted to a
// simjob engine up front and simulate concurrently across the worker
// pool; the table below consumes the results in sweep order.
//
//	go run ./examples/windowsweep            # defaults to SAD
//	go run ./examples/windowsweep LIB
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"runtime"

	"bow/internal/simjob"
	"bow/internal/workloads"
)

func bar(frac float64) string {
	n := int(frac * 40)
	out := make([]byte, n)
	for i := range out {
		out[i] = '#'
	}
	return string(out)
}

func main() {
	name := "SAD"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	b, err := workloads.ByName(name)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("window sweep on %s — %s\n\n", b.Name, b.Description)

	eng, err := simjob.New(simjob.Options{Workers: runtime.GOMAXPROCS(0)})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	// Queue every point before reading any result: the pool overlaps
	// the simulations while we block on the first ticket.
	ctx := context.Background()
	baseTicket := eng.Submit(ctx, simjob.JobSpec{Bench: b.Name, Policy: simjob.PolicyBaseline})
	const loIW, hiIW = 2, 7
	sweep := make([]*simjob.Ticket, 0, hiIW-loIW+1)
	for iw := loIW; iw <= hiIW; iw++ {
		sweep = append(sweep, eng.Submit(ctx, simjob.JobSpec{
			Bench: b.Name, Policy: simjob.PolicyBOWWR, IW: iw,
		}))
	}

	base, err := baseTicket.Wait()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline: %d cycles, IPC %.3f\n\n", base.Summary.Cycles, base.Summary.IPC)

	fmt.Printf("%3s  %12s  %12s  %10s  %s\n", "IW", "reads-elim", "writes-elim", "IPC-gain", "reads eliminated")
	for i, t := range sweep {
		out, err := t.Wait()
		if err != nil {
			log.Fatal(err)
		}
		s := out.Summary
		gain := s.IPC/base.Summary.IPC - 1
		fmt.Printf("%3d  %11.1f%%  %11.1f%%  %+9.1f%%  %s\n",
			loIW+i, 100*s.ReadBypassFrac, 100*s.WriteBypassFrac, 100*gain, bar(s.ReadBypassFrac))
	}
	fmt.Println("\nnote the knee around IW 3 — the paper's chosen window size.")
}
