// Windowsweep: sweep the instruction-window size on one benchmark and
// print the bypass-opportunity and performance curves — the per-kernel
// view behind the paper's Figs. 3 and 10, including where the
// diminishing returns set in.
//
//	go run ./examples/windowsweep            # defaults to SAD
//	go run ./examples/windowsweep LIB
package main

import (
	"fmt"
	"log"
	"os"

	"bow/internal/compiler"
	"bow/internal/config"
	"bow/internal/core"
	"bow/internal/gpu"
	"bow/internal/mem"
	"bow/internal/sm"
	"bow/internal/workloads"
)

func run(b *workloads.Benchmark, bcfg core.Config) *gpu.Result {
	prog := b.Program()
	if bcfg.Policy == core.PolicyCompilerHints {
		if _, err := compiler.Annotate(prog, bcfg.IW); err != nil {
			log.Fatal(err)
		}
	}
	m := mem.NewMemory()
	if b.Init != nil {
		if err := b.Init(m); err != nil {
			log.Fatal(err)
		}
	}
	k := &sm.Kernel{
		Program: prog, GridDim: b.GridDim, BlockDim: b.BlockDim,
		SharedLen: b.SharedLen, Params: b.Params,
	}
	dev, err := gpu.New(config.SimDefault(), bcfg, k, m)
	if err != nil {
		log.Fatal(err)
	}
	res, err := dev.Run(0)
	if err != nil {
		log.Fatal(err)
	}
	if b.Check != nil {
		if err := b.Check(m); err != nil {
			log.Fatalf("functional check failed: %v", err)
		}
	}
	return res
}

func bar(frac float64) string {
	n := int(frac * 40)
	out := make([]byte, n)
	for i := range out {
		out[i] = '#'
	}
	return string(out)
}

func main() {
	name := "SAD"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	b, err := workloads.ByName(name)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("window sweep on %s — %s\n\n", b.Name, b.Description)

	base := run(b, core.Config{Policy: core.PolicyBaseline})
	fmt.Printf("baseline: %d cycles, IPC %.3f\n\n", base.Cycles, base.Stats.IPC())

	fmt.Printf("%3s  %12s  %12s  %10s  %s\n", "IW", "reads-elim", "writes-elim", "IPC-gain", "reads eliminated")
	for iw := 2; iw <= 7; iw++ {
		res := run(b, core.Config{IW: iw, Policy: core.PolicyCompilerHints})
		rd := res.Engine.ReadBypassFrac()
		wr := res.Engine.WriteBypassFrac()
		gain := res.Stats.IPC()/base.Stats.IPC() - 1
		fmt.Printf("%3d  %11.1f%%  %11.1f%%  %+9.1f%%  %s\n",
			iw, 100*rd, 100*wr, 100*gain, bar(rd))
	}
	fmt.Println("\nnote the knee around IW 3 — the paper's chosen window size.")
}
