// Package bow_test hosts the benchmark harness: one testing.B per table
// and figure of the paper's evaluation (regenerating the artifact and
// reporting its headline number as a custom metric), plus
// microbenchmarks of the core structures.
//
//	go test -bench=. -benchmem
//
// Paper targets for the custom metrics (TITAN X Pascal, IW 3):
//
//	Fig 3   read bypass 59%, write bypass 52%
//	Fig 10  IPC +11% (BOW) / +13% (BOW-WR)
//	Fig 11  IPC +11% with half-size BOC
//	Fig 12  OC residency 0.40x of baseline
//	Fig 13  RF dynamic energy -36% (BOW) / -55% (BOW-WR)
//	Table I 10 / 5 / 2 RF writes (exact)
package bow_test

import (
	"context"
	"math/rand"
	"runtime"
	"testing"

	"bow/internal/asm"
	"bow/internal/compiler"
	"bow/internal/core"
	"bow/internal/experiments"
	"bow/internal/isa"
	"bow/internal/simjob"
	"bow/internal/workloads"
)

func BenchmarkFig3BypassOpportunity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner()
		f, err := experiments.Fig3(r)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*f.MeanRead[1], "read_bypass_iw3_%")
		b.ReportMetric(100*f.MeanWrite[1], "write_bypass_iw3_%")
	}
}

func BenchmarkFig4OCResidency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner()
		f, err := experiments.Fig4(r)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*f.MeanOvr, "oc_share_%")
	}
}

func BenchmarkTableIWriteCounts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.TableI()
		if err != nil {
			b.Fatal(err)
		}
		wt, wb, hints := t.Totals()
		if wt != 10 || wb != 5 || hints != 2 {
			b.Fatalf("Table I regressed: %d/%d/%d, want 10/5/2", wt, wb, hints)
		}
		b.ReportMetric(float64(wt), "writes_wt")
		b.ReportMetric(float64(wb), "writes_wb")
		b.ReportMetric(float64(hints), "writes_wr")
	}
}

func BenchmarkFig7WriteDestinations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner()
		f, err := experiments.Fig7(r)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*f.MeanBOC, "transient_%")
		b.ReportMetric(100*f.MeanRF, "rf_only_%")
	}
}

func BenchmarkFig8SourceOperands(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner()
		f, err := experiments.Fig8(r)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*f.Mean[3], "three_src_%")
	}
}

func BenchmarkFig9BOCOccupancy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner()
		f, err := experiments.Fig9(r)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*f.MeanAtMost6, "at_most_half_%")
	}
}

func BenchmarkFig10IPCImprovement(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner()
		f, err := experiments.Fig10(r)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*f.MeanBOW[1], "bow_ipc_gain_iw3_%")
		b.ReportMetric(100*f.MeanBOWWR[1], "bowwr_ipc_gain_iw3_%")
	}
}

func BenchmarkFig11HalfSizeBOC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner()
		f, err := experiments.Fig11(r)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*f.Mean, "halfsize_ipc_gain_%")
		b.ReportMetric(100*(f.MeanFull-f.Mean), "loss_vs_full_%")
	}
}

func BenchmarkFig12OCStageCycles(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner()
		f, err := experiments.Fig12(r)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(f.Mean[1], "oc_cycles_iw3_x")
	}
}

func BenchmarkFig13RFEnergy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner()
		f, err := experiments.Fig13(r)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*(1-f.MeanBOW), "bow_energy_saving_%")
		b.ReportMetric(100*(1-f.MeanBOWWR), "bowwr_energy_saving_%")
	}
}

func BenchmarkRFCComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner()
		f, err := experiments.RFC(r)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*f.MeanRFC, "rfc_ipc_gain_%")
		b.ReportMetric(100*f.MeanBOWWR, "bowwr_ipc_gain_%")
	}
}

func BenchmarkExtendAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner()
		f, err := experiments.ExtendAblation(r)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*(f.MeanWith-f.MeanWout), "extension_gain_pp")
	}
}

func BenchmarkBeyondWindow(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner()
		f, err := experiments.BeyondWindow(r)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*f.MeanBeyond, "beyond_bypass_%")
		b.ReportMetric(100*f.MeanBeyondI, "beyond_ipc_gain_%")
	}
}

func BenchmarkReorderExtension(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner()
		f, err := experiments.Reorder(r)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*(f.MeanReorder-f.MeanPlain), "reorder_gain_pp")
	}
}

// ---------------------------------------------------------------------
// Microbenchmarks: throughput of the core structures.
// ---------------------------------------------------------------------

// BenchmarkEngineAdvance measures the window engine's per-instruction
// bookkeeping cost.
func BenchmarkEngineAdvance(b *testing.B) {
	prog := workloads.BTreeSnippet()
	stream := make([]*isa.Instruction, 0, len(prog.Code))
	for i := range prog.Code {
		stream = append(stream, &prog.Code[i])
	}
	eng, err := core.NewEngine(core.Config{IW: 3, Policy: core.PolicyWriteBack},
		func(uint8, core.Value, core.WriteCause) {})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in := stream[i%len(stream)]
		plan := eng.Advance(in)
		for j := 0; j < plan.NNeedRF; j++ {
			eng.FillFromRF(plan.NeedRF[j], core.Value{}, plan.Seq)
		}
		if d, ok := in.DstReg(); ok {
			eng.Writeback(d, core.Value{}, in.WBHint, plan.Seq)
		}
	}
}

// BenchmarkReplay measures trace-replay throughput (instructions/op).
func BenchmarkReplay(b *testing.B) {
	prog := workloads.BTreeSnippet()
	stream := make([]*isa.Instruction, 0, len(prog.Code))
	for i := range prog.Code {
		stream = append(stream, &prog.Code[i])
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Replay(stream, core.Config{IW: 3, Policy: core.PolicyWriteBack}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompilerAnnotate measures the hint pass on a mid-size kernel.
func BenchmarkCompilerAnnotate(b *testing.B) {
	lib, err := workloads.ByName("LIB")
	if err != nil {
		b.Fatal(err)
	}
	src := lib.Source
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prog, err := asm.Parse(src)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := compiler.Annotate(prog, 3); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatorThroughput measures end-to-end simulated
// cycles/second on one benchmark.
func BenchmarkSimulatorThroughput(b *testing.B) {
	r := experiments.NewRunner()
	lib, err := workloads.ByName("LIB")
	if err != nil {
		b.Fatal(err)
	}
	var cycles int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Fresh runner state per iteration (avoid the memo cache).
		r = experiments.NewRunner()
		res, err := r.Run(lib, core.Config{IW: 3, Policy: core.PolicyWriteBack})
		if err != nil {
			b.Fatal(err)
		}
		cycles += res.Cycles
	}
	b.ReportMetric(float64(cycles)/float64(b.N), "sim_cycles/op")
}

// sweepBenchSpec is the workload for the engine scaling pair below:
// 9 independent simulations (3 benchmarks x 3 policies), enough work
// to amortize pool startup while staying in microbenchmark territory.
func sweepBenchSpec() simjob.SweepSpec {
	return simjob.SweepSpec{
		Benches:  []string{"VECTORADD", "LIB", "SAD"},
		Policies: []string{simjob.PolicyBaseline, simjob.PolicyBOWWB, simjob.PolicyBOWWR},
		IWs:      []int{3},
	}
}

func runSweepBench(b *testing.B, workers int) {
	for i := 0; i < b.N; i++ {
		// Fresh engine per iteration: cold cache, so every job simulates.
		eng, err := simjob.New(simjob.Options{Workers: workers})
		if err != nil {
			b.Fatal(err)
		}
		res, err := eng.RunSweep(context.Background(), sweepBenchSpec())
		if err != nil {
			eng.Close()
			b.Fatal(err)
		}
		for _, item := range res.Items {
			if item.Error != "" {
				eng.Close()
				b.Fatalf("%s/%s: %s", item.Spec.Bench, item.Spec.Policy, item.Error)
			}
		}
		eng.Close()
	}
	b.ReportMetric(float64(workers), "workers")
}

// BenchmarkSweepSequential pins the job engine to one worker — the
// baseline for the scaling comparison.
func BenchmarkSweepSequential(b *testing.B) { runSweepBench(b, 1) }

// BenchmarkSweepParallel runs the same sweep on a GOMAXPROCS-wide
// pool. On a multicore host the ratio to BenchmarkSweepSequential
// approaches the core count (the 9 jobs are independent).
func BenchmarkSweepParallel(b *testing.B) { runSweepBench(b, runtime.GOMAXPROCS(0)) }

// BenchmarkRandomReplay measures the engine over randomized instruction
// mixes (allocation behaviour under churn).
func BenchmarkRandomReplay(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	var stream []*isa.Instruction
	for i := 0; i < 4096; i++ {
		in := &isa.Instruction{Op: isa.OpAdd, PredReg: isa.PredTrue,
			HasDst: true, Dst: uint8(r.Intn(32))}
		in.Srcs[0] = isa.Reg(uint8(r.Intn(32)))
		in.Srcs[1] = isa.Reg(uint8(r.Intn(32)))
		in.NSrc = 2
		stream = append(stream, in)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Replay(stream, core.Config{IW: 3, Capacity: 6, Policy: core.PolicyWriteBack}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimRate measures the simulator's own throughput — simulated
// cycles and instructions retired per wall-clock second — over real
// workloads under the three policy families the evaluation leans on.
// One op is one complete job (parse, compile, simulate, self-check),
// i.e. exactly what the engine's workers execute. Custom metrics:
//
//	cycles/sec    simulated cycles per host second (higher is better)
//	insts/sec     simulated instructions per host second
//	allocs/cycle  heap allocations per simulated cycle (want ~0)
//
// Run with -benchmem to see per-op allocation too. The sub-benchmark
// names match the workload/policy axes of BENCH_simrate.json
// (`make bench` regenerates it via cmd/bowbench -simrate).
func BenchmarkSimRate(b *testing.B) {
	for _, wl := range []string{"VECTORADD", "LIB", "SAD"} {
		for _, pol := range []string{simjob.PolicyBaseline, simjob.PolicyBOWWT, simjob.PolicyBOWWR} {
			b.Run(wl+"/"+pol, func(b *testing.B) {
				spec := simjob.JobSpec{Bench: wl, Policy: pol}
				b.ReportAllocs()
				var ms0, ms1 runtime.MemStats
				runtime.ReadMemStats(&ms0)
				var cycles, insts int64
				for i := 0; i < b.N; i++ {
					out, err := simjob.Execute(context.Background(), spec)
					if err != nil {
						b.Fatal(err)
					}
					cycles += out.Full.Cycles
					insts += out.Full.Stats.Executed
				}
				runtime.ReadMemStats(&ms1)
				if secs := b.Elapsed().Seconds(); secs > 0 && cycles > 0 {
					b.ReportMetric(float64(cycles)/secs, "cycles/sec")
					b.ReportMetric(float64(insts)/secs, "insts/sec")
					b.ReportMetric(float64(ms1.Mallocs-ms0.Mallocs)/float64(cycles), "allocs/cycle")
				}
			})
		}
	}
}

// BenchmarkSimRateReference is BenchmarkSimRate pinned to the in-tree
// reference cycle loop — the before side of the speedup the optimized
// loop is measured against.
func BenchmarkSimRateReference(b *testing.B) {
	for _, wl := range []string{"VECTORADD", "LIB"} {
		b.Run(wl, func(b *testing.B) {
			spec := simjob.JobSpec{Bench: wl, Policy: simjob.PolicyBaseline, ReferenceLoop: true}
			var cycles int64
			for i := 0; i < b.N; i++ {
				out, err := simjob.Execute(context.Background(), spec)
				if err != nil {
					b.Fatal(err)
				}
				cycles += out.Full.Cycles
			}
			if secs := b.Elapsed().Seconds(); secs > 0 {
				b.ReportMetric(float64(cycles)/secs, "cycles/sec")
			}
		})
	}
}
