# BOW reproduction — convenience targets.

GO ?= go

.PHONY: all build vet lint lint-fix-check test race cluster-smoke trace-smoke failover-smoke bench bench-all repro examples cover clean

all: build lint test

build:
	$(GO) build ./...

# bowvet is built once into bin/ and reused; its -V=full stamp hashes
# the binary, so go vet's result cache invalidates itself whenever the
# passes change.
bin/bowvet: $(wildcard cmd/bowvet/*.go internal/analysis/*.go) go.mod
	$(GO) build -o bin/bowvet ./cmd/bowvet

# lint is the full static gate: stock go vet first, then the repo's own
# invariant passes (determinism, hotpathalloc, nilguardtrace, locksafe,
# statecover, resetcover, policyexhaustive, annotcheck) driven through
# the same vet harness. `go run ./cmd/bowvet ./...` is the cache-free
# equivalent of the second step; add `-json` there for the flat
# machine-readable findings array.
lint: bin/bowvet
	$(GO) vet ./...
	$(GO) vet -vettool=$(CURDIR)/bin/bowvet ./...

vet: lint

# lint-fix-check guards the annotation layer the coverage passes stand
# on: annotcheck (typoed directives, missing reasons, dangling and
# stale markers) over the whole tree, then the per-pass fixture tests
# and the repository-clean proof. Run it after editing any //bow:
# annotation, a policy roster, or an analysis pass.
lint-fix-check:
	$(GO) run ./cmd/bowvet -pass annotcheck ./...
	$(GO) test -run 'Fixture|RepositoryClean' ./internal/analysis/

# The default test gate includes lint, the race detector, and the
# failover differential smoke: the job engine (internal/simjob)
# simulates concurrently, so every test run also proves the pool's
# thread safety, and the durable tier's crash/replay path is exercised
# end to end.
test: lint cluster-smoke trace-smoke failover-smoke
	$(GO) test ./...
	$(GO) test -race ./...

race:
	$(GO) test -race ./...

# End-to-end cluster run: a sweep submitted over HTTP to a coordinator
# in front of 3 in-process workers, one of which is crashed mid-job.
# The streamed results must be byte-identical to a single-node run.
# The failover scenario rides along: a durable (WAL-backed) coordinator
# is killed mid-sweep and its warm standby must replay the log and
# finish the sweep byte-identical to an uninterrupted cold run.
cluster-smoke: failover-smoke
	$(GO) test -run TestClusterSmoke -count=1 -v ./internal/cluster

# Failover differential smoke on its own (also part of cluster-smoke
# and the default test gate).
failover-smoke:
	$(GO) test -run 'TestFailoverSmoke|TestStandbyTailAndReadyz' -count=1 -v ./internal/durable

# End-to-end observability run: a traced sweep against a coordinator in
# front of 3 in-process workers must reconstruct spans from all three
# hops (coordinator, worker, engine) under one trace ID.
trace-smoke:
	$(GO) test -run TestTraceSmoke -count=1 -v ./internal/cluster

# Full test log, as recorded in test_output.txt.
test-log:
	$(GO) test ./... 2>&1 | tee test_output.txt

# Regenerate every table and figure of the paper.
repro:
	$(GO) run ./cmd/bowbench

# Simulator-throughput benchmarks: the cycles/sec harness (compared
# against the in-tree reference loop) plus the machine-readable report
# at the repo root. bowbench fails the run if any policy's allocs/cycle
# exceeds the gate (every bypass policy must stay ≤ 1.0).
bench:
	$(GO) test -run xxx -bench SimRate -benchmem .
	$(GO) run ./cmd/bowbench -simrate BENCH_simrate.json -allocgate 1.0 || \
		{ echo "allocgate tripped: a hot path allocates." ; \
		  echo "Run 'go run ./cmd/bowvet -pass hotpathalloc ./...' to find the site (//bow:hotpath functions must not allocate)." ; exit 1 ; }

# One testing.B per paper artifact + microbenchmarks.
bench-all:
	$(GO) test -bench=. -benchmem ./...

bench-log:
	$(GO) test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/windowsweep SAD
	$(GO) run ./examples/energystudy
	$(GO) run ./examples/customkernel

cover:
	$(GO) test -cover ./...

clean:
	$(GO) clean ./...
