# BOW reproduction — convenience targets.

GO ?= go

.PHONY: all build vet test race bench bench-all repro examples cover clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# The default test gate includes vet and the race detector: the job
# engine (internal/simjob) simulates concurrently, so every test run
# also proves the pool's thread safety.
test: vet
	$(GO) test ./...
	$(GO) test -race ./...

race:
	$(GO) test -race ./...

# Full test log, as recorded in test_output.txt.
test-log:
	$(GO) test ./... 2>&1 | tee test_output.txt

# Regenerate every table and figure of the paper.
repro:
	$(GO) run ./cmd/bowbench

# Simulator-throughput benchmarks: the cycles/sec harness (compared
# against the in-tree reference loop) plus the machine-readable report
# at the repo root.
bench:
	$(GO) test -run xxx -bench SimRate -benchmem .
	$(GO) run ./cmd/bowbench -simrate BENCH_simrate.json

# One testing.B per paper artifact + microbenchmarks.
bench-all:
	$(GO) test -bench=. -benchmem ./...

bench-log:
	$(GO) test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/windowsweep SAD
	$(GO) run ./examples/energystudy
	$(GO) run ./examples/customkernel

cover:
	$(GO) test -cover ./...

clean:
	$(GO) clean ./...
