// Command bowbench regenerates the BOW paper's evaluation artifacts:
// every table and figure of the paper is reproduced from simulation and
// printed as a text table. Simulations are submitted through the
// concurrent job engine (internal/simjob): the full evaluation's point
// set is prewarmed across a worker pool and deduplicated by content
// hash, so the wall-clock cost scales down with the core count while
// the rendered artifacts stay byte-identical to a sequential run.
//
// Usage:
//
//	bowbench                 # run everything, GOMAXPROCS workers
//	bowbench -exp fig10      # one experiment
//	bowbench -list           # list experiment IDs
//	bowbench -seq            # inline sequential simulation (no engine)
//	bowbench -cachedir DIR   # persist result summaries across runs
//	bowbench -simrate FILE   # measure simulator throughput, write JSON,
//	                         # and gate per-policy allocs/cycle (-allocgate)
//	bowbench -cpuprofile F   # write a pprof CPU profile of the run
//	bowbench -memprofile F   # write a pprof heap profile at exit
//
// Experiment IDs: fig1 fig3 fig4 table1 fig7 fig8 fig9 fig10 fig11
// fig12 fig13 table2 table3 table4 rfc crosspolicy
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"bow/internal/experiments"
	"bow/internal/simjob"
)

// simRateWorkloads/simRatePolicies are the (workload, policy) grid the
// -simrate report measures: the three benchmarks the cycle-loop
// benchmark harness tracks, under the baseline, both BOW policies, and
// the three comparator engines (so the alloc gate covers every
// per-cycle path).
var (
	simRateWorkloads = []string{"VECTORADD", "LIB", "SAD"}
	simRatePolicies  = []string{
		simjob.PolicyBaseline, simjob.PolicyBOWWT, simjob.PolicyBOWWR,
		simjob.PolicyCARFC, simjob.PolicyLTRF, simjob.PolicySCRF,
	}
)

// simRateForkedSweep is the instruction-window sweep the report times
// cold versus forked: the full paper window range under both windowed
// policies, with a warm-up deep enough to matter (~3/4 of the shortest
// tracked kernel) yet inside every kernel's runtime.
var simRateForkedSweep = simjob.SweepSpec{
	Benches:      simRateWorkloads,
	Policies:     []string{simjob.PolicyBOWWT, simjob.PolicyBOWWR},
	IWs:          []int{2, 3, 4, 5, 6, 7},
	WarmupCycles: 768,
}

// simRateBatchSweep is the 36-point instruction-window sweep the
// report times per-job versus lockstep-batched: the same grid as the
// forked comparison, but exact (bit-identical results) rather than a
// warm-up approximation.
var simRateBatchSweep = simjob.SweepSpec{
	Benches:  simRateWorkloads,
	Policies: []string{simjob.PolicyBOWWT, simjob.PolicyBOWWR},
	IWs:      []int{2, 3, 4, 5, 6, 7},
}

// writeSimRate measures simulator throughput (optimized vs reference
// cycle loop) for the benchmark grid, plus the forked-sweep and
// batch-sweep gains, and writes BENCH_simrate.json.
func writeSimRate(path string, minWall time.Duration) error {
	fmt.Fprintf(os.Stderr, "bowbench: measuring simulation rate (%.0fs per point, x2 loops)\n", minWall.Seconds())
	return simjob.WriteSimRateReport(path, simRateWorkloads, simRatePolicies, minWall,
		"pre-PR seed rates (2s/pt, same host class): VECTORADD 229736 c/s, LIB 128996 c/s, SAD 161394 c/s baseline",
		func(line string) { fmt.Fprintln(os.Stderr, "  "+line) },
		&simRateForkedSweep, &simRateBatchSweep)
}

// checkAllocGate reads a freshly written simrate report back and fails
// when any policy's worst allocs/cycle exceeds the gate — the
// regression guard that keeps the cycle loop's hot path allocation-free
// under every bypass policy, not just the baseline.
func checkAllocGate(path string, gate float64) error {
	if gate <= 0 {
		return nil
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var rep simjob.SimRateReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	worst := map[string]float64{}
	order := []string{}
	for _, p := range rep.Points {
		if _, ok := worst[p.Policy]; !ok {
			order = append(order, p.Policy)
		}
		if p.AllocsPerCycle > worst[p.Policy] {
			worst[p.Policy] = p.AllocsPerCycle
		}
	}
	failed := false
	for _, pol := range order {
		verdict := "PASS"
		if worst[pol] > gate {
			verdict, failed = "FAIL", true
		}
		fmt.Fprintf(os.Stderr, "bowbench: allocgate %-8s max %.2f allocs/cycle (gate %.2f) %s\n",
			pol, worst[pol], gate, verdict)
	}
	if failed {
		return fmt.Errorf("allocs/cycle gate %.2f exceeded", gate)
	}
	return nil
}

type experiment struct {
	id    string
	title string
	run   func(r *experiments.Runner) (string, error)
}

func static(s string) func(*experiments.Runner) (string, error) {
	return func(*experiments.Runner) (string, error) { return s, nil }
}

func allExperiments() []experiment {
	return []experiment{
		{"fig1", "Fig 1: on-chip memory growth", static(experiments.Fig1())},
		{"fig3", "Fig 3: bypass opportunity vs window size", func(r *experiments.Runner) (string, error) {
			f, err := experiments.Fig3(r)
			if err != nil {
				return "", err
			}
			return f.Render(), nil
		}},
		{"fig4", "Fig 4: time in operand-collection stage", func(r *experiments.Runner) (string, error) {
			f, err := experiments.Fig4(r)
			if err != nil {
				return "", err
			}
			return f.Render(), nil
		}},
		{"table1", "Table I: RF writes for the Fig 6 fragment", func(*experiments.Runner) (string, error) {
			t, err := experiments.TableI()
			if err != nil {
				return "", err
			}
			return t.Render(), nil
		}},
		{"fig7", "Fig 7: write-destination distribution (BOW-WR)", func(r *experiments.Runner) (string, error) {
			f, err := experiments.Fig7(r)
			if err != nil {
				return "", err
			}
			return f.Render(), nil
		}},
		{"fig8", "Fig 8: source operands per instruction", func(r *experiments.Runner) (string, error) {
			f, err := experiments.Fig8(r)
			if err != nil {
				return "", err
			}
			return f.Render(), nil
		}},
		{"fig9", "Fig 9: BOC occupancy", func(r *experiments.Runner) (string, error) {
			f, err := experiments.Fig9(r)
			if err != nil {
				return "", err
			}
			return f.Render(), nil
		}},
		{"fig10", "Fig 10: IPC improvement", func(r *experiments.Runner) (string, error) {
			f, err := experiments.Fig10(r)
			if err != nil {
				return "", err
			}
			return f.Render(), nil
		}},
		{"fig11", "Fig 11: IPC with half-size BOC", func(r *experiments.Runner) (string, error) {
			f, err := experiments.Fig11(r)
			if err != nil {
				return "", err
			}
			return f.Render(), nil
		}},
		{"fig12", "Fig 12: OC-stage cycles vs baseline", func(r *experiments.Runner) (string, error) {
			f, err := experiments.Fig12(r)
			if err != nil {
				return "", err
			}
			return f.Render(), nil
		}},
		{"fig13", "Fig 13: normalized RF dynamic energy", func(r *experiments.Runner) (string, error) {
			f, err := experiments.Fig13(r)
			if err != nil {
				return "", err
			}
			return f.Render(), nil
		}},
		{"table2", "Table II: GPU configuration", static(experiments.TableII())},
		{"table3", "Table III: benchmarks", static(experiments.TableIII())},
		{"table4", "Table IV: BOC overheads", static(experiments.TableIV())},
		{"rfc", "Register-file-cache comparison", func(r *experiments.Runner) (string, error) {
			f, err := experiments.RFC(r)
			if err != nil {
				return "", err
			}
			return f.Render(), nil
		}},
		{"crosspolicy", "Cross-policy architecture race (all RF designs)", func(r *experiments.Runner) (string, error) {
			f, err := experiments.CrossPolicy(r)
			if err != nil {
				return "", err
			}
			return f.Render(), nil
		}},
		{"extend", "Ablation: extended instruction window", func(r *experiments.Runner) (string, error) {
			f, err := experiments.ExtendAblation(r)
			if err != nil {
				return "", err
			}
			return f.Render(), nil
		}},
		{"beyond", "Future work: capacity-bound bypassing", func(r *experiments.Runner) (string, error) {
			f, err := experiments.BeyondWindow(r)
			if err != nil {
				return "", err
			}
			return f.Render(), nil
		}},
		{"reorder", "Extension: compiler reordering for locality", func(r *experiments.Runner) (string, error) {
			f, err := experiments.Reorder(r)
			if err != nil {
				return "", err
			}
			return f.Render(), nil
		}},
		{"reusedist", "Motivation (§III): register reuse distances", func(r *experiments.Runner) (string, error) {
			f, err := experiments.ReuseDist(r)
			if err != nil {
				return "", err
			}
			return f.Render(), nil
		}},
	}
}

func main() {
	expID := flag.String("exp", "", "experiment id to run (default: all)")
	list := flag.Bool("list", false, "list experiment ids")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "simulation worker pool size")
	seq := flag.Bool("seq", false, "simulate inline and sequentially (no job engine)")
	cacheDir := flag.String("cachedir", "", "persist result summaries to this directory")
	simRate := flag.String("simrate", "", "measure simulation rate and write the JSON report to this file")
	simRateWall := flag.Duration("simrate-wall", 2*time.Second, "minimum wall time per -simrate measurement point")
	allocGate := flag.Float64("allocgate", 1.0, "-simrate: fail if any policy's max allocs/cycle exceeds this (<= 0 disables)")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile to this file at exit")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bowbench:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "bowbench:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "bowbench:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "bowbench:", err)
			}
		}()
	}

	if *simRate != "" {
		if err := writeSimRate(*simRate, *simRateWall); err != nil {
			fmt.Fprintln(os.Stderr, "bowbench:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "bowbench: wrote %s\n", *simRate)
		if err := checkAllocGate(*simRate, *allocGate); err != nil {
			fmt.Fprintln(os.Stderr, "bowbench:", err)
			os.Exit(1)
		}
		return
	}

	exps := allExperiments()
	if *list {
		for _, e := range exps {
			fmt.Printf("%-8s %s\n", e.id, e.title)
		}
		return
	}

	start := time.Now()
	r := experiments.NewRunner()
	if !*seq {
		engine, err := simjob.New(simjob.Options{Workers: *workers, CacheDir: *cacheDir})
		if err != nil {
			fmt.Fprintln(os.Stderr, "bowbench:", err)
			os.Exit(1)
		}
		defer engine.Close()
		r = experiments.NewEngineRunner(engine)
		if *expID == "" {
			// Fan the whole evaluation out across the pool up front; the
			// figure loops below then consume results as they land.
			n := experiments.Prewarm(r)
			fmt.Fprintf(os.Stderr, "bowbench: prewarming %d points on %d workers\n", n, *workers)
		}
	}
	ran := 0
	for _, e := range exps {
		if *expID != "" && e.id != *expID {
			continue
		}
		out, err := e.run(r)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bowbench: %s: %v\n", e.id, err)
			os.Exit(1)
		}
		fmt.Printf("==== %s ====\n%s\n", e.title, out)
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "bowbench: unknown experiment %q (try -list)\n", *expID)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "bowbench: %d experiments in %.2fs\n", ran, time.Since(start).Seconds())
}
