// Command bowd serves the GPU simulator as a daemon: simulation jobs
// and design-space sweeps are submitted over HTTP, executed on a
// concurrent worker pool, and deduplicated through the two-tier result
// cache (memory LRU + optional on-disk JSON store), so repeated points
// — across requests and across restarts — are simulated once.
//
// Usage:
//
//	bowd                                   # :8080, GOMAXPROCS workers
//	bowd -addr :9090 -workers 8 -cachedir /var/cache/bow
//
// Endpoints:
//
//	POST /simulate   one JobSpec            -> {cached, result}
//	POST /sweep      SweepSpec cross-product -> SweepResult
//	GET  /healthz    liveness
//	GET  /metrics    jobs queued/running/done/failed, cache hit ratio,
//	                 p50/p99 job latency
//	GET  /debug/pprof/...  live profiling (-pprof=false disables): CPU,
//	                 heap, goroutine, block and mutex profiles of the
//	                 serving daemon
//
// Example session:
//
//	bowd -cachedir /tmp/bowcache &
//	curl -s localhost:8080/simulate -d '{"bench":"SAD","policy":"bow-wr","iw":3}'
//	curl -s localhost:8080/sweep -d '{"benches":["LIB","SAD"],"policies":["baseline","bow-wr"],"iws":[2,3,4]}'
//	curl -s localhost:8080/metrics
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	netpprof "net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"bow/internal/simjob"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "simulation worker pool size")
	retries := flag.Int("retries", 0, "extra attempts for a failed job")
	timeout := flag.Duration("timeout", 2*time.Minute, "per-job simulation timeout (0 = none)")
	cacheDir := flag.String("cachedir", "", "on-disk result cache directory (empty = memory only)")
	cacheSize := flag.Int("cachesize", 4096, "in-memory result cache entries")
	pprofOn := flag.Bool("pprof", true, "expose /debug/pprof/ profiling endpoints")
	flag.Parse()

	engine, err := simjob.New(simjob.Options{
		Workers:   *workers,
		Retries:   *retries,
		Timeout:   *timeout,
		CacheSize: *cacheSize,
		CacheDir:  *cacheDir,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "bowd:", err)
		os.Exit(1)
	}

	handler := http.Handler(simjob.NewServer(engine))
	if *pprofOn {
		// Live profiling of the daemon: `go tool pprof
		// http://host:port/debug/pprof/profile` while a sweep runs.
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", netpprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", netpprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", netpprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", netpprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", netpprof.Trace)
		mux.Handle("/", handler)
		handler = mux
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Printf("bowd: serving on %s (%d workers, cachedir=%q)\n", *addr, *workers, *cacheDir)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "bowd:", err)
			os.Exit(1)
		}
	case sig := <-sigc:
		fmt.Printf("bowd: %v — draining\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
		engine.Close()
	}
}
