// Command bowd serves the GPU simulator as a daemon. In its default
// (worker) mode, simulation jobs and design-space sweeps are submitted
// over HTTP, executed on a concurrent worker pool, and deduplicated
// through the two-tier result cache (memory LRU + optional on-disk
// JSON store), so repeated points — across requests and across
// restarts — are simulated once. In -coordinator mode it runs no
// simulations itself: it shards the same API across a fleet of worker
// bowds with cache-affinity routing, hedging, retries, and circuit
// breaking (internal/cluster).
//
// Usage:
//
//	bowd                                   # worker on :8080, GOMAXPROCS pool
//	bowd -addr :9090 -workers 8 -cachedir /var/cache/bow
//	bowd -coordinator -workers=host1:8080,host2:8080
//	bowd -addr :8081 -register http://coord:8080   # worker that joins a coordinator
//
// Worker endpoints:
//
//	POST /simulate   one JobSpec            -> {cached, result}
//	POST /sweep      SweepSpec cross-product -> SweepResult
//	GET  /healthz    liveness
//	GET  /readyz     readiness — 503 once SIGTERM starts the drain,
//	                 so a coordinator stops routing here before the
//	                 listener closes
//	GET  /metrics    jobs queued/running/done/failed, cache hit ratio,
//	                 p50/p99 job latency, per-endpoint request counts,
//	                 HTTP in-flight gauge — JSON by default, Prometheus
//	                 text format when the Accept header asks for
//	                 text/plain (bow_* metric families)
//	GET  /spans      recorded spans; ?trace=ID filters to one trace
//	GET  /debug/pprof/...  live profiling (-pprof=false disables)
//
// Coordinator endpoints (same /simulate and /sweep schema, plus):
//
//	POST /sweep?stream=1  NDJSON stream of per-point results
//	POST /join            {"addr":"host:8080"} dynamic worker join
//	GET  /status          per-worker routing state + cluster counters
//	GET  /spans           coordinator spans merged with every worker's,
//	                      ?trace=ID reconstructs one request's
//	                      coordinator -> worker -> engine timeline
//
// Both modes propagate the X-Bow-Trace-Id request header into every
// hop they touch, so a single ID (bowctl sweep -trace) stitches the
// whole cluster path together.
//
// Example session:
//
//	bowd -addr :8081 -cachedir /tmp/bow1 &
//	bowd -addr :8082 -cachedir /tmp/bow2 &
//	bowd -coordinator -workers=localhost:8081,localhost:8082 &
//	curl -s localhost:8080/simulate -d '{"bench":"SAD","policy":"bow-wr","iw":3}'
//	curl -s localhost:8080/status
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	netpprof "net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	"bow/internal/cluster"
	"bow/internal/simjob"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	coordinator := flag.Bool("coordinator", false, "run as cluster coordinator instead of simulation worker")
	workers := flag.String("workers", "", "worker mode: pool size (default GOMAXPROCS); coordinator mode: comma-separated worker addresses")
	retries := flag.Int("retries", 0, "worker mode: extra attempts for a failed job")
	timeout := flag.Duration("timeout", 2*time.Minute, "worker mode: per-job simulation timeout (0 = none)")
	cacheDir := flag.String("cachedir", "", "worker mode: on-disk result cache directory (empty = memory only)")
	cacheSize := flag.Int("cachesize", 4096, "in-memory result cache entries")
	inflight := flag.Int("inflight", 0, "coordinator mode: max in-flight jobs per worker (0 = default 4)")
	register := flag.String("register", "", "worker mode: coordinator URL to join on startup (POST /join)")
	advertise := flag.String("advertise", "", "address announced to the coordinator when registering (default 127.0.0.1<addr>)")
	drainGrace := flag.Duration("draingrace", 3*time.Second, "pause between flipping /readyz to 503 and closing the listener on SIGTERM")
	pprofOn := flag.Bool("pprof", true, "expose /debug/pprof/ profiling endpoints")
	flag.Parse()

	var handler http.Handler
	var drain func(context.Context, *http.Server)

	if *coordinator {
		var addrs []string
		if *workers != "" {
			for _, a := range strings.Split(*workers, ",") {
				if a = strings.TrimSpace(a); a != "" {
					addrs = append(addrs, a)
				}
			}
		}
		coord, err := cluster.New(cluster.Options{
			MaxInflightPerWorker: *inflight,
			CacheSize:            *cacheSize,
		}, addrs...)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bowd:", err)
			os.Exit(1)
		}
		srv := cluster.NewServer(coord)
		handler = srv
		drain = func(ctx context.Context, hs *http.Server) {
			srv.StartDraining()
			time.Sleep(*drainGrace)
			_ = hs.Shutdown(ctx)
			coord.Close()
		}
		fmt.Printf("bowd: coordinating %d workers on %s\n", len(addrs), *addr)
	} else {
		pool := runtime.GOMAXPROCS(0)
		if *workers != "" {
			n, err := strconv.Atoi(*workers)
			if err != nil || n <= 0 {
				fmt.Fprintf(os.Stderr, "bowd: -workers=%q is not a pool size (worker mode takes an integer)\n", *workers)
				os.Exit(1)
			}
			pool = n
		}
		engine, err := simjob.New(simjob.Options{
			Workers:   pool,
			Retries:   *retries,
			Timeout:   *timeout,
			CacheSize: *cacheSize,
			CacheDir:  *cacheDir,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "bowd:", err)
			os.Exit(1)
		}
		srv := simjob.NewServer(engine)
		handler = srv
		drain = func(ctx context.Context, hs *http.Server) {
			// Readiness goes dark first so the coordinator reroutes new
			// jobs, and the engine drain interrupts in-flight simulations
			// at their next cycle boundary — their /simulate responses
			// carry resumable checkpoints that the coordinator migrates
			// to another worker. The grace period lets its heartbeat
			// observe the 503 before in-flight requests are waited out.
			srv.StartDraining()
			engine.Drain()
			time.Sleep(*drainGrace)
			_ = hs.Shutdown(ctx)
			engine.Close()
		}
		fmt.Printf("bowd: serving on %s (%d workers, cachedir=%q)\n", *addr, pool, *cacheDir)
		if *register != "" {
			if err := joinCoordinator(*register, *advertise, *addr); err != nil {
				fmt.Fprintln(os.Stderr, "bowd: register:", err)
			}
		}
	}

	if *pprofOn {
		// Live profiling of the daemon: `go tool pprof
		// http://host:port/debug/pprof/profile` while a sweep runs.
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", netpprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", netpprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", netpprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", netpprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", netpprof.Trace)
		mux.Handle("/", handler)
		handler = mux
	}

	hs := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "bowd:", err)
			os.Exit(1)
		}
	case sig := <-sigc:
		fmt.Printf("bowd: %v — draining\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		drain(ctx, hs)
	}
}

// joinCoordinator announces this worker to a coordinator's /join
// endpoint. The advertised address defaults to 127.0.0.1 plus the
// listen port — fine for single-host clusters; multi-host setups pass
// -advertise explicitly.
func joinCoordinator(coord, advertise, listen string) error {
	if advertise == "" {
		if strings.HasPrefix(listen, ":") {
			advertise = "127.0.0.1" + listen
		} else {
			advertise = listen
		}
	}
	if !strings.Contains(coord, "://") {
		coord = "http://" + coord
	}
	raw, err := json.Marshal(cluster.JoinRequest{Addr: advertise})
	if err != nil {
		return err
	}
	resp, err := http.Post(strings.TrimRight(coord, "/")+"/join", "application/json", bytes.NewReader(raw))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("coordinator answered %d", resp.StatusCode)
	}
	fmt.Printf("bowd: registered %s with %s\n", advertise, coord)
	return nil
}
