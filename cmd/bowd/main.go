// Command bowd serves the GPU simulator as a daemon. In its default
// (worker) mode, simulation jobs and design-space sweeps are submitted
// over HTTP, executed on a concurrent worker pool, and deduplicated
// through the two-tier result cache (memory LRU + optional on-disk
// JSON store), so repeated points — across requests and across
// restarts — are simulated once. In -coordinator mode it runs no
// simulations itself: it shards the same API across a fleet of worker
// bowds with cache-affinity routing, hedging, retries, and circuit
// breaking (internal/cluster). A coordinator given -wal-dir becomes
// the durable multi-tenant tier (internal/durable): every admitted job
// is write-ahead logged, results persist content-addressed, tenants
// authenticate with API keys under rate/quota/fair-share control, and
// a second bowd started with -standby-of tails the WAL and takes over
// when the primary dies.
//
// Usage:
//
//	bowd                                   # worker on :8080, GOMAXPROCS pool
//	bowd -addr :9090 -workers 8 -cachedir /var/cache/bow
//	bowd -addr :8081 -peers=localhost:8082,localhost:8083   # peer cache fill
//	bowd -coordinator -workers=host1:8080,host2:8080
//	bowd -coordinator -wal-dir /var/lib/bow -tenants-file tenants.json
//	bowd -standby-of http://primary:8080 -wal-dir /var/lib/bow-standby
//	bowd -addr :8081 -register http://coord:8080   # worker that joins a coordinator
//
// Worker endpoints:
//
//	POST /simulate   one JobSpec            -> {cached, result}
//	POST /sweep      SweepSpec cross-product -> SweepResult
//	GET  /result/{hash}  cached result envelope (peer cache fill)
//	GET  /healthz    liveness
//	GET  /readyz     readiness — 503 once SIGTERM starts the drain,
//	                 so a coordinator stops routing here before the
//	                 listener closes
//	GET  /metrics    jobs queued/running/done/failed, cache hit ratio,
//	                 p50/p99 job latency, per-endpoint request counts,
//	                 HTTP in-flight gauge — JSON by default, Prometheus
//	                 text format when the Accept header asks for
//	                 text/plain (bow_* metric families)
//	GET  /spans      recorded spans; ?trace=ID filters to one trace
//	GET  /debug/pprof/...  live profiling (-pprof=false disables)
//
// Coordinator endpoints (same /simulate and /sweep schema, plus):
//
//	POST /sweep?stream=1  NDJSON stream of per-point results
//	POST /join            {"addr":"host:8080"} dynamic worker join
//	POST /leave           {"addr":"host:8080"} drain-time deregister
//	GET  /status          per-worker routing state + cluster counters
//	GET  /spans           coordinator spans merged with every worker's,
//	                      ?trace=ID reconstructs one request's
//	                      coordinator -> worker -> engine timeline
//
// Durable-mode coordinators additionally serve GET /tenants, GET /wal
// (the standby tail feed), and require the X-Bow-Api-Key header on
// job-submitting endpoints; see internal/durable.
//
// Both modes propagate the X-Bow-Trace-Id request header into every
// hop they touch, so a single ID (bowctl sweep -trace) stitches the
// whole cluster path together.
//
// Example session:
//
//	bowd -addr :8081 -cachedir /tmp/bow1 &
//	bowd -addr :8082 -cachedir /tmp/bow2 &
//	bowd -coordinator -workers=localhost:8081,localhost:8082 &
//	curl -s localhost:8080/simulate -d '{"bench":"SAD","policy":"bow-wr","iw":3}'
//	curl -s localhost:8080/status
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	netpprof "net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"bow/internal/cluster"
	"bow/internal/durable"
	"bow/internal/simjob"
)

// switchableHandler lets the standby swap in the full durable server
// at promotion time without restarting the listener.
type switchableHandler struct {
	h atomic.Value // http.Handler
}

func (s *switchableHandler) set(h http.Handler) { s.h.Store(&h) }
func (s *switchableHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	(*s.h.Load().(*http.Handler)).ServeHTTP(w, r)
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	coordinator := flag.Bool("coordinator", false, "run as cluster coordinator instead of simulation worker")
	workers := flag.String("workers", "", "worker mode: pool size (default GOMAXPROCS); coordinator mode: comma-separated worker addresses")
	retries := flag.Int("retries", 0, "worker mode: extra attempts for a failed job")
	timeout := flag.Duration("timeout", 2*time.Minute, "worker mode: per-job simulation timeout (0 = none)")
	cacheDir := flag.String("cachedir", "", "worker mode: on-disk result cache directory (empty = memory only)")
	cacheSize := flag.Int("cachesize", 4096, "in-memory result cache entries")
	peers := flag.String("peers", "", "worker mode: comma-separated sibling worker URLs for peer-to-peer cache fill")
	inflight := flag.Int("inflight", 0, "coordinator mode: max in-flight jobs per worker (0 = default 4)")
	register := flag.String("register", "", "worker mode: coordinator URL to join on startup (POST /join)")
	advertise := flag.String("advertise", "", "address announced to the coordinator when registering (default 127.0.0.1<addr>)")
	drainGrace := flag.Duration("draingrace", 3*time.Second, "pause between flipping /readyz to 503 and closing the listener on SIGTERM")
	walDir := flag.String("wal-dir", "", "coordinator mode: write-ahead log directory — enables the durable multi-tenant tier")
	tenantsFile := flag.String("tenants-file", "", "durable mode: JSON tenant definitions (name, apiKey, weight, ratePerSec, burst, maxInflight)")
	standbyOf := flag.String("standby-of", "", "run as warm standby: primary coordinator URL whose WAL to tail (requires -wal-dir)")
	pprofOn := flag.Bool("pprof", true, "expose /debug/pprof/ profiling endpoints")
	flag.Parse()

	var handler http.Handler
	var drain func(context.Context, *http.Server)

	var fileTenants []durable.Tenant
	if *tenantsFile != "" {
		var err error
		fileTenants, err = durable.LoadTenantsFile(*tenantsFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bowd:", err)
			os.Exit(1)
		}
	}

	switch {
	case *standbyOf != "":
		if *walDir == "" {
			fmt.Fprintln(os.Stderr, "bowd: -standby-of requires -wal-dir")
			os.Exit(1)
		}
		sw := &switchableHandler{}
		promote := func(sb *durable.Standby) {
			var svcSlot atomic.Pointer[durable.Service]
			coord, err := cluster.New(cluster.Options{
				MaxInflightPerWorker: *inflight,
				CacheSize:            *cacheSize,
				OnCheckpoint: func(hash string, cycle int64, ckpt []byte) {
					if svc := svcSlot.Load(); svc != nil {
						svc.LogCheckpoint(hash, cycle, ckpt)
					}
				},
			})
			if err != nil {
				fmt.Fprintln(os.Stderr, "bowd: promote:", err)
				return
			}
			svc, stats, err := sb.Promote(durable.ServiceOptions{
				Tenants: fileTenants,
				Dispatch: func(ctx context.Context, spec simjob.JobSpec) (simjob.JobResult, error) {
					res, _, derr := coord.Do(ctx, spec)
					return res, derr
				},
				OnWorker: func(a string) { coord.Join(a) },
			})
			if err != nil {
				fmt.Fprintln(os.Stderr, "bowd: promote:", err)
				coord.Close()
				return
			}
			svcSlot.Store(svc)
			sw.set(durable.NewServer(svc, coord))
			fmt.Printf("bowd: promoted — replayed %d records, recovered %d jobs (%d resumed from checkpoints), %d workers\n",
				stats.Records, stats.JobsRecovered, stats.JobsResumed, stats.WorkersReplayed)
		}
		sb, err := durable.NewStandby(durable.StandbyOptions{
			Primary: *standbyOf,
			WALDir:  *walDir,
			OnDown: func(sb *durable.Standby) {
				fmt.Println("bowd: primary heartbeat lapsed — promoting")
				promote(sb)
			},
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "bowd:", err)
			os.Exit(1)
		}
		sw.set(sb)
		handler = sw
		drain = func(ctx context.Context, hs *http.Server) {
			_ = hs.Shutdown(ctx)
			_ = sb.Close()
		}
		fmt.Printf("bowd: warm standby for %s on %s (wal %s)\n", *standbyOf, *addr, *walDir)

	case *coordinator && *walDir != "":
		var addrs []string
		if *workers != "" {
			for _, a := range strings.Split(*workers, ",") {
				if a = strings.TrimSpace(a); a != "" {
					addrs = append(addrs, a)
				}
			}
		}
		// The checkpoint hook needs the service, which needs the
		// coordinator's Do: late-bind through an atomic pointer.
		var svcSlot atomic.Pointer[durable.Service]
		coord, err := cluster.New(cluster.Options{
			MaxInflightPerWorker: *inflight,
			CacheSize:            *cacheSize,
			OnCheckpoint: func(hash string, cycle int64, ckpt []byte) {
				if svc := svcSlot.Load(); svc != nil {
					svc.LogCheckpoint(hash, cycle, ckpt)
				}
			},
		}, addrs...)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bowd:", err)
			os.Exit(1)
		}
		svc, stats, err := durable.NewService(durable.ServiceOptions{
			WALDir:  *walDir,
			Tenants: fileTenants,
			Dispatch: func(ctx context.Context, spec simjob.JobSpec) (simjob.JobResult, error) {
				res, _, derr := coord.Do(ctx, spec)
				return res, derr
			},
			OnWorker: func(a string) { coord.Join(a) },
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "bowd:", err)
			os.Exit(1)
		}
		svcSlot.Store(svc)
		for _, a := range addrs {
			svc.NoteWorker(a)
		}
		srv := durable.NewServer(svc, coord)
		handler = srv
		drain = func(ctx context.Context, hs *http.Server) {
			srv.StartDraining()
			time.Sleep(*drainGrace)
			_ = hs.Shutdown(ctx)
			_ = svc.Close()
			coord.Close()
		}
		if stats.Records > 0 {
			fmt.Printf("bowd: replayed %d WAL records — recovered %d jobs (%d resumed), %d tenants, %d workers\n",
				stats.Records, stats.JobsRecovered, stats.JobsResumed, stats.TenantsReplayed, stats.WorkersReplayed)
		}
		fmt.Printf("bowd: durable coordinator on %s (wal %s, %d workers, %d tenants)\n",
			*addr, *walDir, len(addrs), len(fileTenants))

	case *coordinator:
		var addrs []string
		if *workers != "" {
			for _, a := range strings.Split(*workers, ",") {
				if a = strings.TrimSpace(a); a != "" {
					addrs = append(addrs, a)
				}
			}
		}
		coord, err := cluster.New(cluster.Options{
			MaxInflightPerWorker: *inflight,
			CacheSize:            *cacheSize,
		}, addrs...)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bowd:", err)
			os.Exit(1)
		}
		srv := cluster.NewServer(coord)
		handler = srv
		drain = func(ctx context.Context, hs *http.Server) {
			srv.StartDraining()
			time.Sleep(*drainGrace)
			_ = hs.Shutdown(ctx)
			coord.Close()
		}
		fmt.Printf("bowd: coordinating %d workers on %s\n", len(addrs), *addr)

	default:
		pool := runtime.GOMAXPROCS(0)
		if *workers != "" {
			n, err := strconv.Atoi(*workers)
			if err != nil || n <= 0 {
				fmt.Fprintf(os.Stderr, "bowd: -workers=%q is not a pool size (worker mode takes an integer)\n", *workers)
				os.Exit(1)
			}
			pool = n
		}
		var peerList []string
		if *peers != "" {
			for _, p := range strings.Split(*peers, ",") {
				if p = strings.TrimSpace(p); p != "" {
					peerList = append(peerList, p)
				}
			}
		}
		engine, err := simjob.New(simjob.Options{
			Workers:   pool,
			Retries:   *retries,
			Timeout:   *timeout,
			CacheSize: *cacheSize,
			CacheDir:  *cacheDir,
			Peers:     peerList,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "bowd:", err)
			os.Exit(1)
		}
		srv := simjob.NewServer(engine)
		handler = srv
		drain = func(ctx context.Context, hs *http.Server) {
			// Deregister from the coordinator FIRST — before checkpointing
			// anything. Relying on the heartbeat to notice the /readyz 503
			// races it: the coordinator could route a job here in the
			// window between SIGTERM and its next probe, and that job
			// would immediately bounce back as a checkpoint. An explicit
			// POST /leave closes the window.
			if *register != "" {
				if err := leaveCoordinator(*register, *advertise, *addr); err != nil {
					fmt.Fprintln(os.Stderr, "bowd: deregister:", err)
				}
			}
			// Readiness goes dark next so anything not using the registry
			// reroutes too, and the engine drain interrupts in-flight
			// simulations at their next cycle boundary — their /simulate
			// responses carry resumable checkpoints that the coordinator
			// migrates to another worker. The grace period lets a
			// heartbeat observe the 503 before in-flight requests are
			// waited out.
			srv.StartDraining()
			engine.Drain()
			time.Sleep(*drainGrace)
			_ = hs.Shutdown(ctx)
			engine.Close()
		}
		fmt.Printf("bowd: serving on %s (%d workers, cachedir=%q, %d peers)\n", *addr, pool, *cacheDir, len(peerList))
		if *register != "" {
			if err := joinCoordinator(*register, *advertise, *addr); err != nil {
				fmt.Fprintln(os.Stderr, "bowd: register:", err)
			}
		}
	}

	if *pprofOn {
		// Live profiling of the daemon: `go tool pprof
		// http://host:port/debug/pprof/profile` while a sweep runs.
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", netpprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", netpprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", netpprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", netpprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", netpprof.Trace)
		mux.Handle("/", handler)
		handler = mux
	}

	hs := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "bowd:", err)
			os.Exit(1)
		}
	case sig := <-sigc:
		fmt.Printf("bowd: %v — draining\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		drain(ctx, hs)
	}
}

// joinCoordinator announces this worker to a coordinator's /join
// endpoint. The advertised address defaults to 127.0.0.1 plus the
// listen port — fine for single-host clusters; multi-host setups pass
// -advertise explicitly.
func joinCoordinator(coord, advertise, listen string) error {
	if err := postMembership(coord, "/join", advertise, listen); err != nil {
		return err
	}
	fmt.Printf("bowd: registered %s with %s\n", advertiseAddr(advertise, listen), coord)
	return nil
}

// leaveCoordinator removes this worker from the coordinator's registry
// — the first step of the SIGTERM drain, so no new job races the
// checkpointing window.
func leaveCoordinator(coord, advertise, listen string) error {
	return postMembership(coord, "/leave", advertise, listen)
}

func advertiseAddr(advertise, listen string) string {
	if advertise != "" {
		return advertise
	}
	if strings.HasPrefix(listen, ":") {
		return "127.0.0.1" + listen
	}
	return listen
}

func postMembership(coord, path, advertise, listen string) error {
	if !strings.Contains(coord, "://") {
		coord = "http://" + coord
	}
	raw, err := json.Marshal(cluster.JoinRequest{Addr: advertiseAddr(advertise, listen)})
	if err != nil {
		return err
	}
	resp, err := http.Post(strings.TrimRight(coord, "/")+path, "application/json", bytes.NewReader(raw))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("coordinator answered %d", resp.StatusCode)
	}
	return nil
}
