// Command bowvet is the repo's invariant checker: a multichecker of
// the internal/analysis passes (determinism, hotpathalloc,
// nilguardtrace, locksafe, statecover, resetcover, policyexhaustive,
// annotcheck).
//
// Two invocation modes:
//
//	go run ./cmd/bowvet ./...          # standalone, loads packages itself
//	go vet -vettool=bin/bowvet ./...   # driven by the go command
//
// The vettool mode speaks the go command's unitchecker protocol by
// hand (this module deliberately has zero dependencies, so it cannot
// vendor golang.org/x/tools): cmd/go invokes the tool once per package
// with a JSON .cfg file naming the sources and the export data of
// every import, and expects diagnostics on stderr with exit status 2
// (or a JSON object on stdout under -json).
//
// -json is mode-sensitive: under the vettool protocol it emits the
// unitchecker tree the go command expects; standalone it emits a flat
// findings array — [{"file","line","col","pass","message"}, ...] —
// for CI annotators and editor integrations.
//
// Exit status: 0 clean, 1 usage/load failure, 2 diagnostics reported.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/importer"
	"go/token"
	"io"
	"os"
	"sort"
	"strings"

	"bow/internal/analysis"
)

func main() {
	// The go command probes its vet tool before use: `-V=full` asks
	// for a version stamp that keys the vet result cache, `-flags`
	// asks which analyzer flags the tool accepts.
	if len(os.Args) == 2 && os.Args[1] == "-flags" {
		// The go command asks which analyzer flags the tool accepts, as
		// a JSON list; bowvet exposes none to vet (use -pass standalone).
		fmt.Println("[]")
		return
	}
	versionFlag := flag.String("V", "", "if 'full', print version and exit (go command protocol)")
	jsonFlag := flag.Bool("json", false, "emit diagnostics as JSON on stdout (go command protocol)")
	passFlag := flag.String("pass", "", "comma-separated subset of passes to run (default: all)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: bowvet [-pass p1,p2] [package ...]\n   or: go vet -vettool=$(pwd)/bin/bowvet ./...\n\npasses:\n")
		for _, a := range analysis.Analyzers() {
			fmt.Fprintf(os.Stderr, "  %-14s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	if *versionFlag != "" {
		printVersion()
		return
	}

	analyzers, err := selectPasses(*passFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bowvet:", err)
		os.Exit(1)
	}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		runVetTool(args[0], analyzers, *jsonFlag)
		return
	}
	runStandalone(args, analyzers, *jsonFlag)
}

// printVersion emits the tool stamp the go command hashes into its vet
// cache key. Embedding the binary's own content hash means rebuilding
// bowvet with changed passes invalidates stale vet results.
func printVersion() {
	stamp := "devel"
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			h := sha256.New()
			if _, err := io.Copy(h, f); err == nil {
				stamp = fmt.Sprintf("%x", h.Sum(nil))[:16]
			}
			f.Close()
		}
	}
	fmt.Printf("bowvet version %s\n", stamp)
}

func selectPasses(spec string) ([]*analysis.Analyzer, error) {
	if spec == "" {
		return analysis.Analyzers(), nil
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(spec, ",") {
		a := analysis.ByName(strings.TrimSpace(name))
		if a == nil {
			return nil, fmt.Errorf("unknown pass %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}

// runStandalone loads the named packages (default ./...) with the
// internal loader and checks them all.
func runStandalone(patterns []string, analyzers []*analysis.Analyzer, asJSON bool) {
	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bowvet:", err)
		os.Exit(1)
	}
	var diags []analysis.Diagnostic
	for _, pkg := range pkgs {
		diags = append(diags, analysis.Run(pkg, analyzers)...)
	}
	if asJSON {
		emitFlatJSON(diags)
		return
	}
	emit(diags, nil, false)
}

// emitFlatJSON prints the standalone machine-readable form: a flat,
// position-sorted findings array. Exit 2 when any finding survived, so
// scripted callers get the same verdict as the human-readable mode.
func emitFlatJSON(diags []analysis.Diagnostic) {
	type finding struct {
		File    string `json:"file"`
		Line    int    `json:"line"`
		Col     int    `json:"col"`
		Pass    string `json:"pass"`
		Message string `json:"message"`
	}
	sortDiags(diags)
	findings := make([]finding, 0, len(diags))
	for _, d := range diags {
		findings = append(findings, finding{
			File: d.Pos.Filename, Line: d.Pos.Line, Col: d.Pos.Column,
			Pass: d.Analyzer, Message: d.Message,
		})
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "\t")
	if err := enc.Encode(findings); err != nil {
		fatal(err)
	}
	if len(findings) > 0 {
		os.Exit(2)
	}
}

// vetConfig mirrors the JSON the go command writes for its vet tool
// (cmd/go/internal/work's vetConfig).
type vetConfig struct {
	ID          string
	Compiler    string
	Dir         string
	ImportPath  string
	GoFiles     []string
	NonGoFiles  []string
	ImportMap   map[string]string
	PackageFile map[string]string
	Standard    map[string]bool
	PackageVetx map[string]string
	VetxOnly    bool
	VetxOutput  string

	SucceedOnTypecheckFailure bool
}

// runVetTool handles one `go vet` unit of work.
func runVetTool(cfgPath string, analyzers []*analysis.Analyzer, asJSON bool) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fatal(err)
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fatal(fmt.Errorf("parsing %s: %v", cfgPath, err))
	}
	// The facts file must exist even though bowvet's passes are
	// fact-free, or the go command reports the tool as misbehaving.
	writeVetx := func() {
		if cfg.VetxOutput != "" {
			if err := os.WriteFile(cfg.VetxOutput, []byte("bowvet: no facts\n"), 0o666); err != nil {
				fatal(err)
			}
		}
	}
	if cfg.VetxOnly {
		// Dependency visited only for facts; nothing to report.
		writeVetx()
		return
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	pkg, err := analysis.CheckFiles(fset, imp, cfg.ImportPath, cfg.Dir, cfg.GoFiles)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			writeVetx()
			return
		}
		fatal(err)
	}
	ds := analysis.Run(pkg, analyzers)
	writeVetx()
	byPkg := map[string][]analysis.Diagnostic{}
	if len(ds) > 0 {
		byPkg[cfg.ImportPath] = ds
	}
	emit(ds, byPkg, asJSON)
}

// emit prints diagnostics in the requested format and exits non-zero
// when any were found. JSON mode mirrors unitchecker's shape:
// {"pkg": {"analyzer": [{"posn": ..., "message": ...}]}}.
func emit(diags []analysis.Diagnostic, byPkg map[string][]analysis.Diagnostic, asJSON bool) {
	if asJSON {
		type jsonDiag struct {
			Posn    string `json:"posn"`
			Message string `json:"message"`
		}
		tree := map[string]map[string][]jsonDiag{}
		for path, ds := range byPkg {
			perAnalyzer := map[string][]jsonDiag{}
			for _, d := range ds {
				perAnalyzer[d.Analyzer] = append(perAnalyzer[d.Analyzer], jsonDiag{
					Posn: d.Pos.String(), Message: d.Message,
				})
			}
			tree[path] = perAnalyzer
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "\t")
		if err := enc.Encode(tree); err != nil {
			fatal(err)
		}
		// In JSON mode the go command owns the verdict; report clean exit.
		return
	}
	if len(diags) == 0 {
		return
	}
	sortDiags(diags)
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d.String())
	}
	os.Exit(2)
}

func sortDiags(diags []analysis.Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		return a.Pos.Line < b.Pos.Line
	})
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bowvet:", err)
	os.Exit(1)
}
