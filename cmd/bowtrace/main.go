// Command bowtrace has three modes.
//
// Without flags it captures a benchmark's dynamic per-warp
// instruction traces from a baseline simulation and reports the
// register reuse-distance characterization that motivates the paper's
// window sizes (§III): how often the same register is touched again
// within k instructions.
//
// With -events it renders a cycle-level event trace written by
// bowsim -trace: per-warp issue timelines, per-kind event totals, and
// the BOC occupancy summary.
//
// With -resume it time-travel debugs a checkpoint written by
// bowsim -checkpoint: the simulation is restored from the snapshot and
// replayed forward — optionally only to -until CYCLE — while the full
// cycle-event trace of the replayed window is written to -trace. The
// simulator is deterministic, so the replayed window is bit-identical
// to what the original run did over those cycles; re-running with a
// later -until widens the window without touching the checkpoint.
//
// Usage:
//
//	bowtrace -bench SAD
//	bowtrace -bench LIB -dump 20   # also print the head of warp 0's trace
//	bowsim -bench SAD -policy bow-wr -trace sad.ndjson && bowtrace -events sad.ndjson
//	bowsim -bench SAD -policy bow-wr -checkpoint-at 500 -checkpoint sad.snap
//	bowtrace -resume sad.snap -until 900 -trace window.ndjson
//	bowtrace -events window.ndjson
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"

	"bow/internal/config"
	"bow/internal/core"
	"bow/internal/gpu"
	"bow/internal/mem"
	"bow/internal/simjob"
	"bow/internal/sm"
	"bow/internal/snap"
	"bow/internal/stats"
	"bow/internal/trace"
	"bow/internal/workloads"
)

func main() {
	benchName := flag.String("bench", "SAD", "benchmark name")
	dump := flag.Int("dump", 0, "print the first N instructions of one warp's trace")
	events := flag.String("events", "", "render a cycle-event NDJSON file (from bowsim -trace) instead of simulating")
	width := flag.Int("width", 64, "timeline columns in -events mode")
	resume := flag.String("resume", "", "time-travel: replay a bowsim -checkpoint snapshot forward")
	until := flag.Int64("until", 0, "with -resume: stop the replay at this absolute cycle (0 = run to completion)")
	traceOut := flag.String("trace", "", "with -resume: write the replayed window's cycle events (NDJSON) here")
	flag.Parse()

	if *resume != "" {
		if err := timeTravel(*resume, *until, *traceOut); err != nil {
			fmt.Fprintln(os.Stderr, "bowtrace:", err)
			os.Exit(1)
		}
		return
	}
	if *events != "" {
		if err := renderEvents(*events, *width); err != nil {
			fmt.Fprintln(os.Stderr, "bowtrace:", err)
			os.Exit(1)
		}
		return
	}

	b, err := workloads.ByName(*benchName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bowtrace:", err)
		os.Exit(1)
	}
	m := mem.NewMemory()
	if b.Init != nil {
		if err := b.Init(m); err != nil {
			fmt.Fprintln(os.Stderr, "bowtrace:", err)
			os.Exit(1)
		}
	}
	gcfg := config.SimDefault()
	gcfg.NumSMs = 1
	k := &sm.Kernel{
		Program: b.Program(), GridDim: b.GridDim, BlockDim: b.BlockDim,
		SharedLen: b.SharedLen, Params: b.Params,
	}
	d, err := gpu.New(gcfg, core.Config{Policy: core.PolicyBaseline}, k, m)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bowtrace:", err)
		os.Exit(1)
	}
	d.CaptureTrace = true
	res, err := d.Run(0)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bowtrace:", err)
		os.Exit(1)
	}

	// Aggregate reuse distances over every warp.
	agg := stats.NewHistogram()
	keys := make([][2]int, 0, len(res.Traces))
	for key := range res.Traces {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	var insts int
	for _, key := range keys {
		agg.Merge(trace.ReuseDistances(res.Traces[key]))
		insts += len(res.Traces[key])
	}
	sum := trace.Summarize(agg)

	fmt.Printf("benchmark %s: %d warps, %d dynamic instructions, %d register reuses\n",
		b.Name, len(keys), insts, sum.Accesses)
	fmt.Printf("mean reuse distance %.2f instructions (capped at %d)\n\n",
		sum.Mean, trace.MaxTrackedDistance)
	fmt.Println("fraction of reuses within a window of size k (paper §III):")
	for iw := 2; iw <= 7; iw++ {
		frac := sum.Within[iw]
		bar := make([]byte, int(frac*50))
		for i := range bar {
			bar[i] = '#'
		}
		fmt.Printf("  k=%d  %5.1f%%  %s\n", iw, 100*frac, bar)
	}

	if *dump > 0 && len(keys) > 0 {
		t := res.Traces[keys[0]]
		n := *dump
		if n > len(t) {
			n = len(t)
		}
		fmt.Printf("\ntrace head (cta %d, warp %d):\n", keys[0][0], keys[0][1])
		for i := 0; i < n; i++ {
			fmt.Printf("%4d:  %s\n", i, t[i].String())
		}
	}
}

// timeTravel restores a snapshot and replays the simulation forward to
// `until` (0 = completion), writing the replayed window's cycle events
// to outPath. The job spec travels inside the snapshot header, so the
// checkpoint file alone identifies the kernel and configuration.
func timeTravel(path string, until int64, outPath string) error {
	if outPath == "" {
		return fmt.Errorf("-resume needs -trace FILE for the replayed events")
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	h, err := snap.ReadHeader(bytes.NewReader(blob))
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if len(h.SpecJSON) == 0 {
		return fmt.Errorf("%s: snapshot carries no job spec (written outside simjob?)", path)
	}
	var spec simjob.JobSpec
	if err := json.Unmarshal(h.SpecJSON, &spec); err != nil {
		return fmt.Errorf("%s: embedded spec: %w", path, err)
	}
	if until > 0 && until <= h.Cycle {
		return fmt.Errorf("-until %d is not past the checkpoint cycle %d", until, h.Cycle)
	}
	spec.FromCheckpoint = blob

	tracer := trace.NewCycleTracer(0)
	out, err := simjob.ExecuteUntil(context.Background(), spec, tracer, until)
	if err != nil {
		return err
	}
	end := "completion"
	if out.Interrupted {
		end = fmt.Sprintf("cycle %d", out.CheckpointCycle)
	}

	f, err := os.Create(outPath)
	if err != nil {
		return err
	}
	if err := tracer.WriteNDJSON(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("replayed %s/%s from cycle %d to %s: %d events -> %s (%d dropped)\n",
		spec.Bench, spec.Policy, h.Cycle, end, tracer.Len(), outPath, tracer.Dropped())
	fmt.Printf("render with: bowtrace -events %s\n", outPath)
	return nil
}

// renderEvents reads a bowsim -trace NDJSON file and prints per-warp
// issue timelines, per-kind totals, and the BOC occupancy summary.
func renderEvents(path string, width int) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	evs, err := trace.ReadNDJSON(f)
	if err != nil {
		return err
	}
	if len(evs) == 0 {
		return fmt.Errorf("%s: no events", path)
	}
	if width < 8 {
		width = 8
	}

	minCycle, maxCycle := evs[0].Cycle, evs[0].Cycle
	var totals [8]int64 // indexed by EventKind; all kinds fit today
	var bankConflicts int64
	var occ stats.Mean
	maxOcc := int32(0)
	type warpKey struct{ sm, warp int16 }
	issues := map[warpKey][]int64{} // issue cycles per warp
	for _, ev := range evs {
		if ev.Cycle < minCycle {
			minCycle = ev.Cycle
		}
		if ev.Cycle > maxCycle {
			maxCycle = ev.Cycle
		}
		if int(ev.Kind) < len(totals) {
			totals[ev.Kind]++
		}
		switch ev.Kind {
		case trace.EvWarpIssue:
			k := warpKey{ev.SM, ev.Warp}
			issues[k] = append(issues[k], ev.Cycle)
		case trace.EvBOCWrite:
			occ.Add(float64(ev.Arg))
			if ev.Arg > maxOcc {
				maxOcc = ev.Arg
			}
		case trace.EvBankConflict:
			bankConflicts += int64(ev.Arg)
		}
	}
	span := maxCycle - minCycle + 1

	fmt.Printf("trace %s: %d events, cycles %d..%d (%d cycles)\n\n",
		path, len(evs), minCycle, maxCycle, span)

	fmt.Println("event totals:")
	for k := trace.EventKind(0); int(k) < len(totals); k++ {
		if totals[k] == 0 {
			continue
		}
		fmt.Printf("  %-18s %d\n", k.String(), totals[k])
	}
	hits, misses := totals[trace.EvBOCHit], totals[trace.EvBOCMiss]
	if hits+misses > 0 {
		fmt.Printf("  boc hit rate       %.1f%%\n", 100*float64(hits)/float64(hits+misses))
	}
	if bankConflicts > 0 {
		fmt.Printf("  bank conflicts     %d (summed)\n", bankConflicts)
	}
	fmt.Println()

	if occ.N() > 0 {
		fmt.Printf("boc occupancy: mean %.2f entries, max %d (over %d installs)\n\n",
			occ.Value(), maxOcc, occ.N())
	}

	// Per-warp issue timelines: one row per (sm, warp), issue density
	// bucketed into fixed-width columns.
	keys := make([]warpKey, 0, len(issues))
	for k := range issues {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].sm != keys[j].sm {
			return keys[i].sm < keys[j].sm
		}
		return keys[i].warp < keys[j].warp
	})
	if len(keys) == 0 {
		return nil
	}
	fmt.Printf("per-warp issue timelines (%d cycles/column; . 1+  : 25%%+  # 75%%+ of peak):\n", (span+int64(width)-1)/int64(width))
	for _, k := range keys {
		buckets := make([]int, width)
		for _, c := range issues[k] {
			b := int((c - minCycle) * int64(width) / span)
			if b >= width {
				b = width - 1
			}
			buckets[b]++
		}
		peak := 0
		for _, n := range buckets {
			if n > peak {
				peak = n
			}
		}
		row := make([]byte, width)
		for i, n := range buckets {
			switch {
			case n == 0:
				row[i] = ' '
			case n*4 >= peak*3:
				row[i] = '#'
			case n*4 >= peak:
				row[i] = ':'
			default:
				row[i] = '.'
			}
		}
		fmt.Printf("  sm%-2d w%-3d |%s| %d issues\n", k.sm, k.warp, row, len(issues[k]))
	}
	return nil
}
