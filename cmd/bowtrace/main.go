// Command bowtrace captures a benchmark's dynamic per-warp instruction
// traces from a baseline simulation and reports the register
// reuse-distance characterization that motivates the paper's window
// sizes (§III): how often the same register is touched again within k
// instructions.
//
// Usage:
//
//	bowtrace -bench SAD
//	bowtrace -bench LIB -dump 20   # also print the head of warp 0's trace
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"bow/internal/config"
	"bow/internal/core"
	"bow/internal/gpu"
	"bow/internal/mem"
	"bow/internal/sm"
	"bow/internal/stats"
	"bow/internal/trace"
	"bow/internal/workloads"
)

func main() {
	benchName := flag.String("bench", "SAD", "benchmark name")
	dump := flag.Int("dump", 0, "print the first N instructions of one warp's trace")
	flag.Parse()

	b, err := workloads.ByName(*benchName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bowtrace:", err)
		os.Exit(1)
	}
	m := mem.NewMemory()
	if b.Init != nil {
		if err := b.Init(m); err != nil {
			fmt.Fprintln(os.Stderr, "bowtrace:", err)
			os.Exit(1)
		}
	}
	gcfg := config.SimDefault()
	gcfg.NumSMs = 1
	k := &sm.Kernel{
		Program: b.Program(), GridDim: b.GridDim, BlockDim: b.BlockDim,
		SharedLen: b.SharedLen, Params: b.Params,
	}
	d, err := gpu.New(gcfg, core.Config{Policy: core.PolicyBaseline}, k, m)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bowtrace:", err)
		os.Exit(1)
	}
	d.CaptureTrace = true
	res, err := d.Run(0)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bowtrace:", err)
		os.Exit(1)
	}

	// Aggregate reuse distances over every warp.
	agg := stats.NewHistogram()
	keys := make([][2]int, 0, len(res.Traces))
	for key := range res.Traces {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	var insts int
	for _, key := range keys {
		agg.Merge(trace.ReuseDistances(res.Traces[key]))
		insts += len(res.Traces[key])
	}
	sum := trace.Summarize(agg)

	fmt.Printf("benchmark %s: %d warps, %d dynamic instructions, %d register reuses\n",
		b.Name, len(keys), insts, sum.Accesses)
	fmt.Printf("mean reuse distance %.2f instructions (capped at %d)\n\n",
		sum.Mean, trace.MaxTrackedDistance)
	fmt.Println("fraction of reuses within a window of size k (paper §III):")
	for iw := 2; iw <= 7; iw++ {
		frac := sum.Within[iw]
		bar := make([]byte, int(frac*50))
		for i := range bar {
			bar[i] = '#'
		}
		fmt.Printf("  k=%d  %5.1f%%  %s\n", iw, 100*frac, bar)
	}

	if *dump > 0 && len(keys) > 0 {
		t := res.Traces[keys[0]]
		n := *dump
		if n > len(t) {
			n = len(t)
		}
		fmt.Printf("\ntrace head (cta %d, warp %d):\n", keys[0][0], keys[0][1])
		for i := 0; i < n; i++ {
			fmt.Printf("%4d:  %s\n", i, t[i].String())
		}
	}
}
