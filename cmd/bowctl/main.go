// Command bowctl is the cluster CLI: it scatter/gathers design-space
// sweeps through a bowd coordinator and renders cluster state.
//
// Usage:
//
//	bowctl [-coord http://localhost:8080] [-api-key KEY] status
//	bowctl [-coord URL] [-api-key KEY] sweep [-benches SAD,LIB] [-policies baseline,bow-wr]
//	       [-iws 2,3,4] [-capacities ...] [-sms ...] [-schedulers gto,lrr]
//	       [-maxcycles N] [-fork] [-warmup N] [-batch] [-batchsize N] [-json] [-quiet] [-trace] [-traceid ID]
//	bowctl [-coord URL] [-api-key KEY] tenants
//	bowctl [-coord URL] trace -id ID
//
// sweep streams partial results as the cluster completes them (one
// line per unique design point, via the coordinator's NDJSON stream),
// then prints the gathered table. With -trace the sweep is tagged with
// a trace ID (generated unless -traceid pins one), propagated to the
// coordinator and every worker via the X-Bow-Trace-Id header, and the
// reconstructed coordinator→worker→engine span timeline is fetched
// back and rendered after the results. trace re-fetches the spans of
// an earlier traced run. status renders every worker's routing state —
// readiness, breaker (an open breaker shows the time until its
// half-open probe), in-flight, load, cache hit ratio, per-endpoint
// request counts — plus the cluster counters.
//
// Against a durable coordinator (bowd -coordinator -wal-dir), pass
// -api-key (or set BOW_API_KEY) to authenticate; tenants renders the
// per-tenant admission/quota/fair-share table.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/url"
	"os"
	"sort"
	"strconv"
	"strings"

	"bow/internal/cluster"
	"bow/internal/simjob"
	"bow/internal/stats"
	"bow/internal/trace"
)

// apiKey is the -api-key value (or $BOW_API_KEY); when set, every
// request carries it in the X-Bow-Api-Key header for the durable
// coordinator's tenant middleware.
var apiKey string

func main() {
	coord := flag.String("coord", "http://localhost:8080", "coordinator base URL")
	key := flag.String("api-key", os.Getenv("BOW_API_KEY"), "tenant API key for a durable coordinator (default $BOW_API_KEY)")
	flag.Usage = usage
	flag.Parse()
	apiKey = *key
	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	base := *coord
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	base = strings.TrimRight(base, "/")

	var err error
	switch args[0] {
	case "status":
		err = runStatus(base)
	case "sweep":
		err = runSweep(base, args[1:])
	case "tenants":
		err = runTenants(base)
	case "trace":
		err = runTrace(base, args[1:])
	default:
		fmt.Fprintf(os.Stderr, "bowctl: unknown command %q\n", args[0])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "bowctl:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  bowctl [-coord URL] [-api-key KEY] status
  bowctl [-coord URL] [-api-key KEY] sweep [-benches a,b] [-policies p,q] [-iws 2,3]
         [-capacities n,m] [-sms 1,2] [-schedulers gto,lrr]
         [-maxcycles N] [-fork] [-warmup N] [-batch] [-batchsize N] [-json] [-quiet] [-trace] [-traceid ID]
  bowctl [-coord URL] [-api-key KEY] tenants
  bowctl [-coord URL] trace -id ID
`)
}

// httpGet issues a GET with the API key header attached when one is
// configured.
func httpGet(url string) (*http.Response, error) {
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	if apiKey != "" {
		req.Header.Set(apiKeyHeader, apiKey)
	}
	return http.DefaultClient.Do(req)
}

// apiKeyHeader mirrors durable.APIKeyHeader without importing the
// whole durable package into the CLI.
const apiKeyHeader = "X-Bow-Api-Key"

func runStatus(base string) error {
	resp, err := httpGet(base + "/status")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("coordinator answered %d", resp.StatusCode)
	}
	var st cluster.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return err
	}

	tbl := stats.NewTable("worker", "ready", "breaker", "inflight", "load",
		"done", "failed", "cache", "http-inflight", "simulate", "sweep")
	for _, w := range st.Workers {
		ready := "yes"
		switch {
		case w.Draining:
			ready = "draining"
		case !w.Ready:
			ready = "DOWN"
		}
		breaker := w.Breaker
		if w.Breaker == "open" {
			// An open breaker is still a row — show how long until its
			// half-open probe may route instead of hiding the worker.
			breaker = fmt.Sprintf("open(%.1fs→half-open)", float64(w.BreakerRetryMillis)/1000)
		}
		tbl.AddRowf(w.Addr, ready, breaker, w.Inflight, w.ReportedLoad,
			w.Metrics.Done, w.Metrics.Failed, stats.Pct(w.Metrics.CacheHitRatio),
			w.Metrics.HTTPInflight, w.Metrics.Requests["/simulate"],
			w.Metrics.Requests["/sweep"])
	}
	fmt.Print(tbl.String())
	c := st.Counters
	fmt.Printf("\ncluster: jobs=%d done=%d failed=%d localCacheHits=%d retries=%d\n",
		c.Jobs, c.Done, c.Failed, c.LocalCacheHits, c.Retries)
	fmt.Printf("hedging: fired=%d won=%d discarded=%d delay=%dus (p50=%dus p95=%dus)\n",
		c.Hedges, c.HedgeWins, c.HedgeDiscarded, st.HedgeDelayMicros,
		st.P50LatencyMicros, st.P95LatencyMicros)
	return nil
}

// tenantRow mirrors durable.TenantStatus's JSON shape (kept local for
// the same reason as apiKeyHeader).
type tenantRow struct {
	Name        string  `json:"name"`
	Weight      int     `json:"weight"`
	RatePerSec  float64 `json:"ratePerSec"`
	MaxInflight int     `json:"maxInflight"`
	Inflight    int     `json:"inflight"`
	Queued      int     `json:"queued"`
	Admitted    int64   `json:"admitted"`
	Served      int64   `json:"served"`
	Rejected    int64   `json:"rejected"`
}

func runTenants(base string) error {
	resp, err := httpGet(base + "/tenants")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusUnauthorized:
		return fmt.Errorf("coordinator answered 401: pass -api-key (or set BOW_API_KEY)")
	case http.StatusNotFound:
		return fmt.Errorf("coordinator has no /tenants endpoint (not running with -wal-dir?)")
	default:
		return fmt.Errorf("coordinator answered %d", resp.StatusCode)
	}
	var rows []tenantRow
	if err := json.NewDecoder(resp.Body).Decode(&rows); err != nil {
		return err
	}
	tbl := stats.NewTable("tenant", "weight", "rate/s", "max-inflight",
		"inflight", "queued", "admitted", "served", "rejected")
	for _, t := range rows {
		rate := "∞"
		if t.RatePerSec > 0 {
			rate = fmt.Sprintf("%g", t.RatePerSec)
		}
		maxIn := "∞"
		if t.MaxInflight > 0 {
			maxIn = strconv.Itoa(t.MaxInflight)
		}
		tbl.AddRowf(t.Name, t.Weight, rate, maxIn,
			t.Inflight, t.Queued, t.Admitted, t.Served, t.Rejected)
	}
	fmt.Print(tbl.String())
	return nil
}

func runSweep(base string, args []string) error {
	fs := flag.NewFlagSet("sweep", flag.ExitOnError)
	benches := fs.String("benches", "", "comma-separated benchmark names (empty = all)")
	policies := fs.String("policies", "", "comma-separated policies (empty = bow-wr)")
	iws := fs.String("iws", "", "comma-separated instruction-window sizes")
	capacities := fs.String("capacities", "", "comma-separated BOC capacities")
	sms := fs.String("sms", "", "comma-separated SM counts")
	schedulers := fs.String("schedulers", "", "comma-separated schedulers (gto,lrr)")
	maxCycles := fs.Int64("maxcycles", 0, "per-job cycle bound (0 = default)")
	forkPrefix := fs.Bool("fork", false, "warm-up prefix forking: points sharing a (bench,sms,scheduler) class resume one shared warm-up snapshot instead of re-simulating it (honored when the target is a worker bowd; a coordinator shards per point and runs cold)")
	warmup := fs.Int64("warmup", 0, "with -fork: shared warm-up prefix length in cycles (0 = engine default; implies -fork)")
	batch := fs.Bool("batch", false, "lockstep batch stepping: points sharing a (bench,sms,scheduler) class step one cycle each per tick on a shared prepared kernel; exact (bit-identical to per-job runs), unlike -fork")
	batchSize := fs.Int("batchsize", 0, "with -batch: max points per lockstep group (0 = engine default; implies -batch)")
	jsonOut := fs.Bool("json", false, "print the aggregate SweepResult JSON instead of tables")
	quiet := fs.Bool("quiet", false, "suppress per-point progress lines")
	traced := fs.Bool("trace", false, "tag the sweep with a trace ID and render its spans afterwards")
	traceID := fs.String("traceid", "", "trace ID to tag the sweep with (implies -trace; empty = generated)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *traceID != "" {
		*traced = true
	}
	if *traced && *traceID == "" {
		*traceID = trace.NewID()
	}
	if *traced {
		fmt.Fprintf(os.Stderr, "trace id: %s\n", *traceID)
	}

	if *warmup > 0 {
		*forkPrefix = true
	}
	if *batchSize > 0 {
		*batch = true
	}
	sw := simjob.SweepSpec{
		Benches:      splitCSV(*benches),
		Policies:     splitCSV(*policies),
		Schedulers:   splitCSV(*schedulers),
		MaxCycles:    *maxCycles,
		ForkPrefix:   *forkPrefix,
		WarmupCycles: *warmup,
		Batch:        *batch,
		BatchSize:    *batchSize,
	}
	var err error
	if sw.IWs, err = splitInts(*iws); err != nil {
		return fmt.Errorf("-iws: %w", err)
	}
	if sw.Capacities, err = splitInts(*capacities); err != nil {
		return fmt.Errorf("-capacities: %w", err)
	}
	if sw.SMs, err = splitInts(*sms); err != nil {
		return fmt.Errorf("-sms: %w", err)
	}
	body, err := json.Marshal(sw)
	if err != nil {
		return err
	}

	if *jsonOut {
		resp, err := postSweep(base+"/sweep", body, *traceID)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("coordinator answered %d", resp.StatusCode)
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		var res simjob.SweepResult
		if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
			return err
		}
		if err := enc.Encode(res); err != nil {
			return err
		}
		if *traced {
			return showTrace(base, *traceID)
		}
		return nil
	}

	resp, err := postSweep(base+"/sweep?stream=1", body, *traceID)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("coordinator answered %d", resp.StatusCode)
	}

	var items []simjob.SweepItem
	var summary *simjob.SweepResult
	failed := 0
	if strings.Contains(resp.Header.Get("Content-Type"), "application/x-ndjson") {
		// Coordinator: per-point NDJSON progress stream.
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		for sc.Scan() {
			var ev cluster.StreamEvent
			if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
				return fmt.Errorf("bad stream line: %w", err)
			}
			if ev.Summary != nil {
				summary = ev.Summary
				continue
			}
			if ev.Item == nil {
				continue
			}
			items = append(items, *ev.Item)
			if !*quiet {
				printProgress(ev)
			}
			if ev.Item.Error != "" {
				failed++
			}
		}
		if err := sc.Err(); err != nil {
			return err
		}
	} else {
		// Worker bowd: the stream param is ignored and the whole sweep
		// (forked when -fork asked for it) arrives as one document.
		var res simjob.SweepResult
		if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
			return err
		}
		items = res.Items
		for _, it := range items {
			if it.Error != "" {
				failed++
			}
		}
		sum := res
		sum.Items = nil
		summary = &sum
	}

	sort.Slice(items, func(i, j int) bool {
		a, b := items[i].Spec, items[j].Spec
		if a.Bench != b.Bench {
			return a.Bench < b.Bench
		}
		if a.Policy != b.Policy {
			return a.Policy < b.Policy
		}
		if a.IW != b.IW {
			return a.IW < b.IW
		}
		return a.Capacity < b.Capacity
	})
	tbl := stats.NewTable("bench", "policy", "iw", "cap", "cycles", "ipc",
		"rd-bypass", "wr-bypass", "cached")
	for _, it := range items {
		if it.Error != "" {
			tbl.AddRowf(it.Spec.Bench, it.Spec.Policy, it.Spec.IW, it.Spec.Capacity,
				"ERROR", it.Error, "", "", "")
			continue
		}
		r := it.Result
		cached := it.Cached
		if cached == "" {
			cached = "fresh"
		}
		tbl.AddRowf(r.Bench, r.Policy, r.IW, r.Capacity, r.Cycles, r.IPC,
			stats.Pct(r.ReadBypassFrac), stats.Pct(r.WriteBypassFrac), cached)
	}
	fmt.Print(tbl.String())
	if summary != nil {
		fmt.Printf("\n%d jobs (%d unique), %d failed\n", summary.Jobs, len(items), summary.Failed)
		if summary.ForkGroups > 0 {
			fmt.Printf("forked %d warm-up group(s), %d simulated cycles reused\n",
				summary.ForkGroups, summary.ReusedCycles)
		}
		if summary.BatchGroups > 0 {
			fmt.Printf("stepped %d point(s) in %d lockstep batch(es), occupancy %.2f\n",
				summary.BatchedJobs, summary.BatchGroups, summary.BatchOccupancy)
		}
	} else if failed > 0 {
		fmt.Printf("\n%d of %d points failed\n", failed, len(items))
	}
	if *traced {
		if err := showTrace(base, *traceID); err != nil {
			return err
		}
	}
	if failed > 0 || (summary != nil && summary.Failed > 0) {
		return fmt.Errorf("sweep finished with failures")
	}
	return nil
}

// postSweep posts the sweep body, tagging the request with the trace
// ID when one is set.
func postSweep(url string, body []byte, traceID string) (*http.Response, error) {
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if traceID != "" {
		req.Header.Set(trace.HeaderTraceID, traceID)
	}
	if apiKey != "" {
		req.Header.Set(apiKeyHeader, apiKey)
	}
	return http.DefaultClient.Do(req)
}

// runTrace fetches and renders the spans of an earlier traced run.
func runTrace(base string, args []string) error {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	id := fs.String("id", "", "trace ID (as printed by sweep -trace)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *id == "" {
		return fmt.Errorf("trace needs -id")
	}
	return showTrace(base, *id)
}

// showTrace fetches /spans?trace=id from the coordinator and renders
// the cross-process timeline.
func showTrace(base, id string) error {
	resp, err := httpGet(base + "/spans?trace=" + url.QueryEscape(id))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("coordinator answered %d", resp.StatusCode)
	}
	var spans []trace.Span
	if err := json.NewDecoder(resp.Body).Decode(&spans); err != nil {
		return err
	}
	fmt.Printf("\ntrace %s: %d spans\n", id, len(spans))
	if len(spans) == 0 {
		return nil
	}
	renderSpans(spans)
	return nil
}

// renderSpans prints spans as a table, start times relative to the
// earliest span.
func renderSpans(spans []trace.Span) {
	t0 := spans[0].StartMicros
	for _, s := range spans {
		if s.StartMicros < t0 {
			t0 = s.StartMicros
		}
	}
	tbl := stats.NewTable("start", "dur", "hop", "stage", "worker", "job", "err")
	for _, s := range spans {
		job := s.Job
		if len(job) > 12 {
			job = job[:12]
		}
		tbl.AddRowf(fmt.Sprintf("+%.3fms", float64(s.StartMicros-t0)/1000),
			fmt.Sprintf("%.3fms", float64(s.DurMicros)/1000),
			s.Hop, s.Stage, s.Worker, job, s.Err)
	}
	fmt.Print(tbl.String())
}

func printProgress(ev cluster.StreamEvent) {
	it := ev.Item
	if it.Error != "" {
		fmt.Printf("[%d/%d] %s %s iw=%d FAILED: %s\n",
			ev.Done, ev.Total, it.Spec.Bench, it.Spec.Policy, it.Spec.IW, it.Error)
		return
	}
	src := it.Cached
	if src == "" {
		src = "fresh"
	}
	fmt.Printf("[%d/%d] %s %s iw=%d cap=%d cycles=%d ipc=%.2f (%s)\n",
		ev.Done, ev.Total, it.Spec.Bench, it.Spec.Policy, it.Spec.IW,
		it.Spec.Capacity, it.Result.Cycles, it.Result.IPC, src)
}

func splitCSV(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func splitInts(s string) ([]int, error) {
	var out []int
	for _, p := range splitCSV(s) {
		n, err := strconv.Atoi(p)
		if err != nil {
			return nil, fmt.Errorf("%q is not an integer", p)
		}
		out = append(out, n)
	}
	return out, nil
}
