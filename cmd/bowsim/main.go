// Command bowsim runs one benchmark kernel through the GPU simulator
// under a chosen bypass configuration and prints the run report:
// IPC, register-file traffic, bypass fractions, energy, and collector
// occupancy. The run is expressed as a simjob.JobSpec, so -json emits
// exactly the JobResult schema cmd/bowd serves and the result cache
// stores.
//
// Usage:
//
//	bowsim -bench LIB -policy bow-wr -iw 3 -capacity 6
//	bowsim -bench SAD -policy bow-wr -json
//	bowsim -bench SAD -policy bow-wr -trace sad.ndjson   (then: bowtrace -events sad.ndjson)
//	bowsim -bench SAD -policy bow-wr -checkpoint-at 500 -checkpoint sad.snap
//	bowsim -resume sad.snap                              (continue to completion)
//	bowsim -list
//	bowsim -bench SAD -policy baseline -sms 2 -v
//
// A -trace file is flushed and closed on every exit path: a failed or
// signal-interrupted run leaves a complete file of the events captured
// so far, a diagnostic on stderr, and a nonzero exit — never a silent
// partial file.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"syscall"

	"bow/internal/energy"
	"bow/internal/simjob"
	"bow/internal/snap"
	"bow/internal/trace"
	"bow/internal/workloads"
)

func main() {
	os.Exit(run())
}

func run() int {
	benchName := flag.String("bench", "VECTORADD", "benchmark name (see -list)")
	policy := flag.String("policy", "bow-wr", simjob.PolicySpellings())
	iw := flag.Int("iw", 3, "instruction window size")
	capacity := flag.Int("capacity", 0, "BOC entries (0 = conservative 4*IW)")
	sms := flag.Int("sms", 1, "number of SMs")
	list := flag.Bool("list", false, "list benchmarks")
	verbose := flag.Bool("v", false, "print detailed counters")
	jsonOut := flag.Bool("json", false, "emit the JobResult JSON (the schema bowd serves)")
	beyond := flag.Bool("beyond", false, "future-work mode: capacity-bound bypassing (no nominal window cutoff)")
	noExtend := flag.Bool("noextend", false, "ablation: disable the extended instruction window")
	reorder := flag.Bool("reorder", false, "extension: compiler reordering for reuse locality")
	traceFile := flag.String("trace", "", "write cycle-level trace events (NDJSON) to this file; render with bowtrace -events")
	checkpointFile := flag.String("checkpoint", "", "write a resumable snapshot to this file when the run pauses at -checkpoint-at")
	checkpointAt := flag.Int64("checkpoint-at", 0, "pause the simulation at this cycle and write the -checkpoint snapshot")
	resumeFile := flag.String("resume", "", "resume from a snapshot written by -checkpoint (the embedded spec overrides the spec flags)")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the simulation to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile to this file at exit")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bowsim:", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "bowsim:", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "bowsim:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "bowsim:", err)
			}
		}()
	}

	if *list {
		for _, b := range workloads.All() {
			fmt.Printf("%-11s %-9s %s\n", b.Name, b.Suite, b.Description)
		}
		return 0
	}
	if *checkpointAt > 0 && *checkpointFile == "" {
		fmt.Fprintln(os.Stderr, "bowsim: -checkpoint-at needs -checkpoint FILE")
		return 2
	}
	if *checkpointFile != "" && *checkpointAt <= 0 {
		fmt.Fprintln(os.Stderr, "bowsim: -checkpoint needs -checkpoint-at CYCLE")
		return 2
	}

	spec := simjob.JobSpec{
		Bench:        *benchName,
		Policy:       *policy,
		IW:           *iw,
		Capacity:     *capacity,
		SMs:          *sms,
		BeyondWindow: *beyond,
		NoExtend:     *noExtend,
		Reorder:      *reorder,
	}
	if *resumeFile != "" {
		resumed, err := specFromSnapshot(*resumeFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bowsim:", err)
			return 1
		}
		spec = resumed
	}

	var tracer *trace.CycleTracer
	if *traceFile != "" {
		tracer = trace.NewCycleTracer(0)
	}

	// A signal interrupts the simulation loop cooperatively; the trace
	// is still flushed below and the partial run diagnosed — the file is
	// never left silently incomplete.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	out, err := simjob.ExecuteUntil(ctx, spec, tracer, *checkpointAt)

	// Flush the trace on every exit path — success, pause, simulation
	// error, or signal — before deciding the exit code.
	if tracer != nil {
		if werr := writeTrace(tracer, *traceFile); werr != nil {
			fmt.Fprintln(os.Stderr, "bowsim: trace:", werr)
			if err == nil {
				return 1
			}
		} else {
			// Stderr, so -trace composes with -json's stdout schema.
			fmt.Fprintf(os.Stderr, "bowsim: wrote %d trace events to %s (%d dropped)\n",
				tracer.Len(), *traceFile, tracer.Dropped())
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "bowsim:", err)
		if ctx.Err() != nil {
			fmt.Fprintln(os.Stderr, "bowsim: run interrupted by signal; results incomplete")
		}
		if tracer != nil {
			fmt.Fprintf(os.Stderr, "bowsim: %s covers only the cycles before the failure\n", *traceFile)
		}
		return 1
	}

	if out.Interrupted {
		// Paused at -checkpoint-at: persist the snapshot and stop.
		if err := os.WriteFile(*checkpointFile, out.Checkpoint, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "bowsim: checkpoint:", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "bowsim: checkpoint at cycle %d written to %s (%d bytes); resume with -resume %s\n",
			out.CheckpointCycle, *checkpointFile, len(out.Checkpoint), *checkpointFile)
		return 0
	}
	if *checkpointAt > 0 {
		fmt.Fprintf(os.Stderr, "bowsim: kernel completed before cycle %d; no checkpoint written\n", *checkpointAt)
	}
	if out.ResumedFrom > 0 {
		fmt.Fprintf(os.Stderr, "bowsim: resumed from cycle %d\n", out.ResumedFrom)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out.Summary); err != nil {
			fmt.Fprintln(os.Stderr, "bowsim:", err)
			return 1
		}
		return 0
	}

	b, err := workloads.ByName(out.Spec.Bench)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bowsim:", err)
		return 1
	}
	if out.Spec.Reorder {
		fmt.Println("kernel reordered for reuse locality (footnote-1 extension)")
	}
	if out.Hints != "" {
		fmt.Printf("compiler hints: %s\n", out.Hints)
	}
	res, sum := out.Full, out.Summary
	checked := "skipped"
	if sum.Checked {
		checked = "ok"
	}
	rep := energy.Compute(res.Energy)
	fmt.Printf("benchmark   %s (%s) — %s\n", b.Name, b.Suite, b.Description)
	fmt.Printf("launch      grid %d x block %d, policy %s, IW %d\n",
		b.GridDim, b.BlockDim, sum.Policy, sum.IW)
	fmt.Printf("result      functional check %s\n", checked)
	fmt.Printf("cycles      %d\n", sum.Cycles)
	fmt.Printf("warp-insts  %d (IPC %.3f)\n", sum.Executed, sum.IPC)
	fmt.Printf("rf reads    %d  (bypassed %d, %.1f%%)\n",
		sum.RFReads, sum.BypassedReads, 100*sum.ReadBypassFrac)
	fmt.Printf("rf writes   %d  (eliminated %.1f%%)\n",
		sum.RFWrites, 100*sum.WriteBypassFrac)
	fmt.Printf("energy      RF %.1f nJ + overhead %.1f nJ\n",
		rep.RFDynamicPJ/1000, rep.OverheadPJ()/1000)
	if *verbose {
		fmt.Printf("oc share    %.1f%% (mem %.1f%%, non-mem %.1f%%)\n",
			100*res.Stats.OCShare(), 100*res.Stats.MemOCShare(), 100*res.Stats.NonMemOCShare())
		fmt.Printf("bank conf   %d\n", sum.BankConflicts)
		fmt.Printf("mem txns    %d\n", sum.MemTransactions)
		fmt.Printf("divergences %d\n", res.Stats.Divergences)
		fmt.Printf("writes by hint: rf-only %d, both %d, boc-only %d\n",
			res.Stats.WritebacksByHint[1], res.Stats.WritebacksByHint[0], res.Stats.WritebacksByHint[2])
		fmt.Printf("occupancy   mean %.2f entries\n", res.Stats.OccupancyBOC.Mean())
	}
	return 0
}

// writeTrace persists the captured events, closing the file before
// reporting, so no exit path leaves an open or torn NDJSON file. A nil
// tracer (tracing disabled) is a no-op.
func writeTrace(tracer *trace.CycleTracer, path string) error {
	if tracer == nil {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tracer.WriteNDJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// specFromSnapshot reads a checkpoint file and rebuilds the job it
// belongs to from the spec embedded in the snapshot header, with the
// snapshot stream attached as the resume point.
func specFromSnapshot(path string) (simjob.JobSpec, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return simjob.JobSpec{}, err
	}
	h, err := snap.ReadHeader(bytes.NewReader(blob))
	if err != nil {
		return simjob.JobSpec{}, fmt.Errorf("%s: %w", path, err)
	}
	if len(h.SpecJSON) == 0 {
		return simjob.JobSpec{}, fmt.Errorf("%s: snapshot carries no job spec (written outside simjob?)", path)
	}
	var spec simjob.JobSpec
	if err := json.Unmarshal(h.SpecJSON, &spec); err != nil {
		return simjob.JobSpec{}, fmt.Errorf("%s: embedded spec: %w", path, err)
	}
	spec.FromCheckpoint = blob
	return spec, nil
}
