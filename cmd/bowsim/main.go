// Command bowsim runs one benchmark kernel through the GPU simulator
// under a chosen bypass configuration and prints the run report:
// IPC, register-file traffic, bypass fractions, energy, and collector
// occupancy.
//
// Usage:
//
//	bowsim -bench LIB -policy bow-wr -iw 3 -capacity 6
//	bowsim -list
//	bowsim -bench SAD -policy baseline -sms 2 -v
package main

import (
	"flag"
	"fmt"
	"os"

	"bow/internal/compiler"
	"bow/internal/config"
	"bow/internal/core"
	"bow/internal/energy"
	"bow/internal/gpu"
	"bow/internal/mem"
	"bow/internal/rfc"
	"bow/internal/sm"
	"bow/internal/workloads"
)

func parsePolicy(s string) (core.Config, bool, error) {
	switch s {
	case "baseline":
		return core.Config{Policy: core.PolicyBaseline}, false, nil
	case "bow", "bow-wt", "write-through":
		return core.Config{Policy: core.PolicyWriteThrough}, false, nil
	case "bow-wb", "write-back":
		return core.Config{Policy: core.PolicyWriteBack}, false, nil
	case "bow-wr", "hints", "compiler":
		return core.Config{Policy: core.PolicyCompilerHints}, true, nil
	case "rfc":
		return rfc.Config(rfc.DefaultEntriesPerWarp), false, nil
	}
	return core.Config{}, false, fmt.Errorf("unknown policy %q (baseline|bow|bow-wb|bow-wr|rfc)", s)
}

func main() {
	benchName := flag.String("bench", "VECTORADD", "benchmark name (see -list)")
	policy := flag.String("policy", "bow-wr", "baseline | bow | bow-wb | bow-wr | rfc")
	iw := flag.Int("iw", 3, "instruction window size")
	capacity := flag.Int("capacity", 0, "BOC entries (0 = conservative 4*IW)")
	sms := flag.Int("sms", 1, "number of SMs")
	list := flag.Bool("list", false, "list benchmarks")
	verbose := flag.Bool("v", false, "print detailed counters")
	beyond := flag.Bool("beyond", false, "future-work mode: capacity-bound bypassing (no nominal window cutoff)")
	noExtend := flag.Bool("noextend", false, "ablation: disable the extended instruction window")
	reorder := flag.Bool("reorder", false, "extension: compiler reordering for reuse locality")
	flag.Parse()

	if *list {
		for _, b := range workloads.All() {
			fmt.Printf("%-11s %-9s %s\n", b.Name, b.Suite, b.Description)
		}
		return
	}

	b, err := workloads.ByName(*benchName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bowsim:", err)
		os.Exit(1)
	}
	bcfg, hints, err := parsePolicy(*policy)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bowsim:", err)
		os.Exit(1)
	}
	if bcfg.Policy.Bypassing() && !bcfg.ForwardThroughPort {
		bcfg.IW = *iw
		bcfg.Capacity = *capacity
		bcfg.BeyondWindow = *beyond
		bcfg.NoExtend = *noExtend
	}

	prog := b.Program()
	if *reorder {
		if err := compiler.Reorder(prog, *iw); err != nil {
			fmt.Fprintln(os.Stderr, "bowsim: reorder:", err)
			os.Exit(1)
		}
		fmt.Println("kernel reordered for reuse locality (footnote-1 extension)")
	}
	if hints {
		hs, err := compiler.Annotate(prog, bcfg.IW)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bowsim: annotate:", err)
			os.Exit(1)
		}
		fmt.Printf("compiler hints: %s\n", hs.String())
	}

	m := mem.NewMemory()
	if b.Init != nil {
		if err := b.Init(m); err != nil {
			fmt.Fprintln(os.Stderr, "bowsim: init:", err)
			os.Exit(1)
		}
	}
	gcfg := config.SimDefault()
	gcfg.NumSMs = *sms
	k := &sm.Kernel{
		Program: prog, GridDim: b.GridDim, BlockDim: b.BlockDim,
		SharedLen: b.SharedLen, Params: b.Params,
	}
	d, err := gpu.New(gcfg, bcfg, k, m)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bowsim:", err)
		os.Exit(1)
	}
	res, err := d.Run(0)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bowsim:", err)
		os.Exit(1)
	}
	checked := "skipped"
	if b.Check != nil {
		if err := b.Check(m); err != nil {
			fmt.Fprintln(os.Stderr, "bowsim: FUNCTIONAL CHECK FAILED:", err)
			os.Exit(1)
		}
		checked = "ok"
	}

	rep := energy.Compute(res.Energy)
	fmt.Printf("benchmark   %s (%s) — %s\n", b.Name, b.Suite, b.Description)
	fmt.Printf("launch      grid %d x block %d, policy %v, IW %d\n",
		b.GridDim, b.BlockDim, bcfg.Policy, bcfg.IW)
	fmt.Printf("result      functional check %s\n", checked)
	fmt.Printf("cycles      %d\n", res.Cycles)
	fmt.Printf("warp-insts  %d (IPC %.3f)\n", res.Stats.Executed, res.Stats.IPC())
	fmt.Printf("rf reads    %d  (bypassed %d, %.1f%%)\n",
		res.Engine.RFReads, res.Engine.BypassedRead, 100*res.Engine.ReadBypassFrac())
	fmt.Printf("rf writes   %d  (eliminated %.1f%%)\n",
		res.Engine.RFWrites, 100*res.Engine.WriteBypassFrac())
	fmt.Printf("energy      RF %.1f nJ + overhead %.1f nJ\n",
		rep.RFDynamicPJ/1000, rep.OverheadPJ()/1000)
	if *verbose {
		fmt.Printf("oc share    %.1f%% (mem %.1f%%, non-mem %.1f%%)\n",
			100*res.Stats.OCShare(), 100*res.Stats.MemOCShare(), 100*res.Stats.NonMemOCShare())
		fmt.Printf("bank conf   %d\n", res.RF.BankConflicts)
		fmt.Printf("mem txns    %d\n", res.Stats.MemTransactions)
		fmt.Printf("divergences %d\n", res.Stats.Divergences)
		fmt.Printf("writes by hint: rf-only %d, both %d, boc-only %d\n",
			res.Stats.WritebacksByHint[1], res.Stats.WritebacksByHint[0], res.Stats.WritebacksByHint[2])
		fmt.Printf("occupancy   mean %.2f entries\n", res.Stats.OccupancyBOC.Mean())
	}
}
