// Command bowsim runs one benchmark kernel through the GPU simulator
// under a chosen bypass configuration and prints the run report:
// IPC, register-file traffic, bypass fractions, energy, and collector
// occupancy. The run is expressed as a simjob.JobSpec, so -json emits
// exactly the JobResult schema cmd/bowd serves and the result cache
// stores.
//
// Usage:
//
//	bowsim -bench LIB -policy bow-wr -iw 3 -capacity 6
//	bowsim -bench SAD -policy bow-wr -json
//	bowsim -bench SAD -policy bow-wr -trace sad.ndjson   (then: bowtrace -events sad.ndjson)
//	bowsim -list
//	bowsim -bench SAD -policy baseline -sms 2 -v
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"bow/internal/energy"
	"bow/internal/simjob"
	"bow/internal/trace"
	"bow/internal/workloads"
)

func main() {
	benchName := flag.String("bench", "VECTORADD", "benchmark name (see -list)")
	policy := flag.String("policy", "bow-wr", "baseline | bow | bow-wb | bow-wr | rfc")
	iw := flag.Int("iw", 3, "instruction window size")
	capacity := flag.Int("capacity", 0, "BOC entries (0 = conservative 4*IW)")
	sms := flag.Int("sms", 1, "number of SMs")
	list := flag.Bool("list", false, "list benchmarks")
	verbose := flag.Bool("v", false, "print detailed counters")
	jsonOut := flag.Bool("json", false, "emit the JobResult JSON (the schema bowd serves)")
	beyond := flag.Bool("beyond", false, "future-work mode: capacity-bound bypassing (no nominal window cutoff)")
	noExtend := flag.Bool("noextend", false, "ablation: disable the extended instruction window")
	reorder := flag.Bool("reorder", false, "extension: compiler reordering for reuse locality")
	traceFile := flag.String("trace", "", "write cycle-level trace events (NDJSON) to this file; render with bowtrace -events")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the simulation to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile to this file at exit")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bowsim:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "bowsim:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "bowsim:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "bowsim:", err)
			}
		}()
	}

	if *list {
		for _, b := range workloads.All() {
			fmt.Printf("%-11s %-9s %s\n", b.Name, b.Suite, b.Description)
		}
		return
	}

	spec := simjob.JobSpec{
		Bench:        *benchName,
		Policy:       *policy,
		IW:           *iw,
		Capacity:     *capacity,
		SMs:          *sms,
		BeyondWindow: *beyond,
		NoExtend:     *noExtend,
		Reorder:      *reorder,
	}
	var tracer *trace.CycleTracer
	if *traceFile != "" {
		tracer = trace.NewCycleTracer(0)
	}
	out, err := simjob.ExecuteTraced(context.Background(), spec, tracer)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bowsim:", err)
		os.Exit(1)
	}
	if tracer != nil {
		f, err := os.Create(*traceFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bowsim:", err)
			os.Exit(1)
		}
		if err := tracer.WriteNDJSON(f); err == nil {
			err = f.Close()
		} else {
			f.Close()
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "bowsim:", err)
			os.Exit(1)
		}
		// Stderr, so -trace composes with -json's stdout schema.
		fmt.Fprintf(os.Stderr, "bowsim: wrote %d trace events to %s (%d dropped)\n",
			tracer.Len(), *traceFile, tracer.Dropped())
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out.Summary); err != nil {
			fmt.Fprintln(os.Stderr, "bowsim:", err)
			os.Exit(1)
		}
		return
	}

	b, err := workloads.ByName(out.Spec.Bench)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bowsim:", err)
		os.Exit(1)
	}
	if out.Spec.Reorder {
		fmt.Println("kernel reordered for reuse locality (footnote-1 extension)")
	}
	if out.Hints != "" {
		fmt.Printf("compiler hints: %s\n", out.Hints)
	}
	res, sum := out.Full, out.Summary
	checked := "skipped"
	if sum.Checked {
		checked = "ok"
	}
	rep := energy.Compute(res.Energy)
	fmt.Printf("benchmark   %s (%s) — %s\n", b.Name, b.Suite, b.Description)
	fmt.Printf("launch      grid %d x block %d, policy %s, IW %d\n",
		b.GridDim, b.BlockDim, sum.Policy, sum.IW)
	fmt.Printf("result      functional check %s\n", checked)
	fmt.Printf("cycles      %d\n", sum.Cycles)
	fmt.Printf("warp-insts  %d (IPC %.3f)\n", sum.Executed, sum.IPC)
	fmt.Printf("rf reads    %d  (bypassed %d, %.1f%%)\n",
		sum.RFReads, sum.BypassedReads, 100*sum.ReadBypassFrac)
	fmt.Printf("rf writes   %d  (eliminated %.1f%%)\n",
		sum.RFWrites, 100*sum.WriteBypassFrac)
	fmt.Printf("energy      RF %.1f nJ + overhead %.1f nJ\n",
		rep.RFDynamicPJ/1000, rep.OverheadPJ()/1000)
	if *verbose {
		fmt.Printf("oc share    %.1f%% (mem %.1f%%, non-mem %.1f%%)\n",
			100*res.Stats.OCShare(), 100*res.Stats.MemOCShare(), 100*res.Stats.NonMemOCShare())
		fmt.Printf("bank conf   %d\n", sum.BankConflicts)
		fmt.Printf("mem txns    %d\n", sum.MemTransactions)
		fmt.Printf("divergences %d\n", res.Stats.Divergences)
		fmt.Printf("writes by hint: rf-only %d, both %d, boc-only %d\n",
			res.Stats.WritebacksByHint[1], res.Stats.WritebacksByHint[0], res.Stats.WritebacksByHint[2])
		fmt.Printf("occupancy   mean %.2f entries\n", res.Stats.OccupancyBOC.Mean())
	}
}
