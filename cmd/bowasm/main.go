// Command bowasm assembles a kernel source file, prints its
// disassembly, and dumps the BOW-WR compiler analysis: CFG summary,
// liveness footprint, and the per-instruction write-back hints.
//
// Usage:
//
//	bowasm kernel.s                 # assemble + hint dump at IW 3
//	bowasm -iw 4 kernel.s
//	bowasm -bench BTREE             # inspect a built-in benchmark
//	bowasm -snippet                 # the paper's Fig. 6 fragment
package main

import (
	"flag"
	"fmt"
	"os"

	"bow/internal/asm"
	"bow/internal/compiler"
	"bow/internal/experiments"
	"bow/internal/workloads"
)

func main() {
	iw := flag.Int("iw", 3, "instruction window size for hint analysis")
	benchName := flag.String("bench", "", "inspect a built-in benchmark instead of a file")
	snippet := flag.Bool("snippet", false, "inspect the paper's Fig. 6 BTREE fragment")
	flag.Parse()

	var prog *asm.Program
	var err error
	switch {
	case *snippet:
		prog = workloads.BTreeSnippet()
	case *benchName != "":
		b, berr := workloads.ByName(*benchName)
		if berr != nil {
			fmt.Fprintln(os.Stderr, "bowasm:", berr)
			os.Exit(1)
		}
		prog = b.Program()
	case flag.NArg() == 1:
		src, rerr := os.ReadFile(flag.Arg(0))
		if rerr != nil {
			fmt.Fprintln(os.Stderr, "bowasm:", rerr)
			os.Exit(1)
		}
		prog, err = asm.Parse(string(src))
		if err != nil {
			fmt.Fprintln(os.Stderr, "bowasm:", err)
			os.Exit(1)
		}
	default:
		fmt.Fprintln(os.Stderr, "usage: bowasm [-iw N] (<file.s> | -bench NAME | -snippet)")
		os.Exit(2)
	}

	cfg, err := compiler.BuildCFG(prog)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bowasm:", err)
		os.Exit(1)
	}
	lv := compiler.ComputeLiveness(cfg)
	fmt.Printf("// %d instructions, %d basic blocks, %d registers, max %d live\n",
		len(prog.Code), len(cfg.Blocks), prog.NumRegs(), lv.MaxLive())

	dump, err := experiments.HintDump(prog, *iw)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bowasm:", err)
		os.Exit(1)
	}
	fmt.Print(dump)
}
