module bow

go 1.22
